//! Figure 17: metric-breakdown frontier — RL-based ABR/CC vs the full set
//! of rule-based baselines on the trace corpora.
//!
//! CC: mean throughput vs 90th-percentile latency (Cellular and Ethernet).
//! ABR: mean bitrate vs 90th-percentile rebuffering ratio (FCC and Norway).
//!
//! Paper result shape: the Genet policy sits on the frontier (high
//! throughput / bitrate at low tail latency / rebuffering).
//!
//! ```sh
//! cargo run --release -p genet-bench --bin fig17_frontier [-- --full]
//! ```

use genet::abr::baselines::{baseline_by_name as abr_baseline, run_abr};
use genet::abr::{run_abr_policy, AbrScenario, AbrSim, VideoModel};
use genet::cc::baselines::{baseline_by_name as cc_baseline, run_cc};
use genet::cc::{CcEnv, CcPath, CcScenario, CcSim};
use genet::prelude::*;
use genet_bench::harness::{self, Args};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::parse();
    let n = harness::corpus_eval_count(args.full);
    let mut out = harness::tsv("fig17_frontier");
    out.header(&["scenario", "corpus", "algorithm", "x_metric", "y_metric"]);

    // ---------------- CC ----------------
    let cc = CcScenario::new();
    let cc_agent = harness::cached_genet(&cc, cc.space(RangeLevel::Rl3), &args, None, "");
    let cc_genet = cc_agent.policy(PolicyMode::Greedy);
    let cc_rl: Vec<(String, PpoAgent)> = RangeLevel::all()
        .into_iter()
        .map(|l| (l.label().into(), harness::cached_traditional(&cc, l, &args)))
        .collect();
    for kind in [CorpusKind::Cellular, CorpusKind::Ethernet] {
        let (count, dur) = kind.split_shape(Split::Test);
        let corpus = kind.generate_sized(Split::Test, 1, count.min(n), dur);
        let mut algos: Vec<(String, Option<&PpoPolicy>)> = vec![
            ("bbr".into(), None),
            ("cubic".into(), None),
            ("vivace".into(), None),
            ("copa".into(), None),
            ("Genet".into(), Some(&cc_genet)),
        ];
        let rl_policies: Vec<(String, PpoPolicy)> = cc_rl
            .iter()
            .map(|(l, a)| (l.clone(), a.policy(PolicyMode::Greedy)))
            .collect();
        for (l, p) in &rl_policies {
            algos.push((l.clone(), Some(p)));
        }
        for (name, policy) in algos {
            let mut tputs = Vec::new();
            let mut lats = Vec::new();
            for (i, trace) in corpus.traces.iter().enumerate() {
                let path = CcPath {
                    trace: trace.clone(),
                    base_rtt_s: 0.08,
                    queue_cap_pkts: 50.0,
                    loss_rate: 0.0,
                    delay_noise_s: 0.0,
                    duration_s: 30.0,
                };
                let mut sim = CcSim::new(path, i as u64);
                match policy {
                    Some(p) => {
                        let mut env = CcEnv::new(sim);
                        let mut rng = StdRng::seed_from_u64(i as u64);
                        genet::env::rollout_policy(&mut env, p, &mut rng);
                        sim = env.sim().clone();
                    }
                    None => {
                        let mut algo = cc_baseline(&name);
                        run_cc(&mut sim, algo.as_mut());
                    }
                }
                let mis = sim.completed_mis();
                tputs.push(mean(
                    &mis.iter().map(|m| m.throughput_mbps).collect::<Vec<_>>(),
                ));
                lats.extend(mis.iter().map(|m| m.avg_latency_s * 1000.0));
            }
            out.row(&vec![
                "cc".into(),
                kind.name().into(),
                name.clone(),
                fmt(mean(&tputs)),
                fmt(percentile(&lats, 90.0)),
            ]);
        }
    }

    // ---------------- ABR ----------------
    let abr = AbrScenario::new();
    let abr_agent = harness::cached_genet(&abr, abr.space(RangeLevel::Rl3), &args, None, "");
    let abr_genet = abr_agent.policy(PolicyMode::Greedy);
    let abr_rl: Vec<(String, PpoAgent)> = RangeLevel::all()
        .into_iter()
        .map(|l| {
            (
                l.label().into(),
                harness::cached_traditional(&abr, l, &args),
            )
        })
        .collect();
    for kind in [CorpusKind::Fcc, CorpusKind::Norway] {
        let (count, dur) = kind.split_shape(Split::Test);
        let corpus = kind.generate_sized(Split::Test, 1, count.min(n), dur);
        let rl_policies: Vec<(String, PpoPolicy)> = abr_rl
            .iter()
            .map(|(l, a)| (l.clone(), a.policy(PolicyMode::Greedy)))
            .collect();
        let mut algos: Vec<(String, Option<&PpoPolicy>)> = vec![
            ("mpc".into(), None),
            ("bba".into(), None),
            ("rate".into(), None),
        ];
        algos.push(("Genet".into(), Some(&abr_genet)));
        for (l, p) in &rl_policies {
            algos.push((l.clone(), Some(p)));
        }
        for (name, policy) in algos {
            let mut bitrates = Vec::new();
            let mut rebuf_ratios = Vec::new();
            for (i, trace) in corpus.traces.iter().enumerate() {
                let video = VideoModel::new(196.0, 4.0, i as u64);
                let mut sim = AbrSim::new(trace.clone(), video, 0.08, 60.0);
                let outs = match policy {
                    Some(p) => run_abr_policy(sim.clone(), p, i as u64),
                    None => {
                        let mut algo = abr_baseline(&name);
                        run_abr(&mut sim, algo.as_mut())
                    }
                };
                let nl = outs.len() as f64;
                bitrates.push(outs.iter().map(|o| o.bitrate_mbps).sum::<f64>() / nl);
                let total_rebuf: f64 = outs.iter().map(|o| o.rebuffer_s).sum();
                let total_time: f64 = outs.iter().map(|o| o.download_s).sum();
                rebuf_ratios.push(total_rebuf / total_time.max(1e-9));
            }
            out.row(&vec![
                "abr".into(),
                kind.name().into(),
                name.clone(),
                fmt(mean(&bitrates)),
                fmt(percentile(&rebuf_ratios, 90.0)),
            ]);
        }
    }
}

//! Figure 19: Genet vs the "Robustifying" adversarial-trace approach and
//! vs Genet variants whose BO maximizes the Robustify objective
//! (gap-to-optimum − ρ·non-smoothness, ρ ∈ {0.1, 0.5, 1}). ABR, evaluated
//! on the Figure-10-style synthetic default-config environments.
//!
//! Paper result shape: MPC < Robustify < robustify-objective variants <
//! Genet.
//!
//! ```sh
//! cargo run --release -p genet-bench --bin fig19_robustify [-- --full]
//! ```

use genet::prelude::*;
use genet_bench::harness::{self, Args};

fn main() {
    let args = Args::parse();
    let mut out = harness::tsv("fig19_robustify");
    out.header(&["method", "test_reward"]);

    let abr = AbrScenario::new();
    let space = abr.space(RangeLevel::Rl3);
    let gcfg = harness::genet_config(&abr, args.full);
    // Test set: like Fig. 10, synthetic environments around the defaults
    // with every parameter drawn from the full box.
    let test = test_configs(&space, harness::test_env_count(args.full), args.seed ^ 0x19);

    let eval = |agent: &PpoAgent| {
        mean(&eval_policy_many(
            &abr,
            &agent.policy(PolicyMode::Greedy),
            &test,
            args.seed,
        ))
    };

    // MPC reference.
    let mpc = mean(&eval_baseline_many(&abr, "mpc", &test, args.seed));
    out.row(&vec!["mpc".into(), fmt(mpc)]);

    // Robustify proper (adversarial trace search, ρ = 1 as in [19]).
    let rcfg = RobustifyConfig {
        rounds: gcfg.rounds,
        iters_per_round: gcfg.iters_per_round,
        initial_iters: gcfg.initial_iters,
        candidates: gcfg.bo_trials,
        rho: 1.0,
        adv_prob: 0.3,
        train: gcfg.train,
    };
    let tag = format!("abr_robustify_it{}_s{}", gcfg.total_iters(), args.seed);
    let robustify_agent = harness::cached_agent(&tag, &abr, &args, || {
        robustify_abr_train(&rcfg, args.seed).agent
    });
    out.row(&vec!["robustify".into(), fmt(eval(&robustify_agent))]);

    // Genet with the Robustify BO objective at each ρ.
    for rho in [0.1, 0.5, 1.0] {
        let agent = harness::cached_genet(
            &abr,
            space.clone(),
            &args,
            Some(SelectionCriterion::RobustifyReward { rho }),
            &format!("_rob{rho}"),
        );
        out.row(&vec![format!("bo_robustify_rho{rho}"), fmt(eval(&agent))]);
    }

    // Genet proper.
    let genet_agent = harness::cached_genet(&abr, space.clone(), &args, None, "");
    out.row(&vec!["genet".into(), fmt(eval(&genet_agent))]);
}

//! Cholesky factorization and SPD solves.
//!
//! The Gaussian process behind Genet's Bayesian-optimization search must
//! repeatedly solve `K x = y` for a symmetric positive-definite kernel matrix
//! `K`. We factor `K = L L^T` once per fit and then back-substitute.
//! Numerical robustness comes from an adaptive diagonal jitter: kernel
//! matrices built from near-duplicate environment configurations are close to
//! singular, and the standard remedy (as in scikit-learn / GPy) is to add a
//! small multiple of the identity until the factorization succeeds.

use crate::matrix::Matrix;

/// Error cases for [`Cholesky::decompose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// The input matrix was not square.
    NotSquare,
    /// The matrix was not positive-definite even after the maximum jitter.
    NotPositiveDefinite,
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite => {
                write!(f, "matrix is not positive-definite (after max jitter)")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Lower-triangular Cholesky factor `L` of an SPD matrix `A = L L^T`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// Jitter that was added to the diagonal to achieve positive-definiteness.
    pub jitter: f64,
}

impl Cholesky {
    /// Factors `a` (which must be square and symmetric) as `L L^T`.
    ///
    /// If the plain factorization fails, retries with exponentially growing
    /// diagonal jitter starting at `1e-10 * mean(diag)` up to a relative
    /// jitter of `1e-2`.
    pub fn decompose(a: &Matrix) -> Result<Self, CholeskyError> {
        if a.rows() != a.cols() {
            return Err(CholeskyError::NotSquare);
        }
        let n = a.rows();
        let diag_mean = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a.get(i, i).abs()).sum::<f64>() / n as f64
        };
        let base = diag_mean.max(1e-300);
        let mut jitter = 0.0;
        for attempt in 0..9 {
            if let Some(l) = Self::try_factor(a, jitter) {
                return Ok(Self { l, jitter });
            }
            jitter = base * 1e-10 * 10f64.powi(attempt);
            if jitter > base * 1e-2 {
                break;
            }
        }
        Err(CholeskyError::NotPositiveDefinite)
    }

    fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a.get(i, j);
                if i == j {
                    sum += jitter;
                }
                for k in 0..j {
                    sum -= l.get(i, k) * l.get(j, k);
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return None;
                    }
                    l.set(i, j, sum.sqrt());
                } else {
                    l.set(i, j, sum / l.get(j, j));
                }
            }
        }
        Some(l)
    }

    /// The lower-triangular factor `L`.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L z = b` (forward substitution).
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let mut z = vec![0.0; self.l.rows()];
        self.solve_lower_into(b, &mut z);
        z
    }

    /// [`Self::solve_lower`] into a caller-held buffer — same operation
    /// sequence, zero allocation. `z` must have length `n`; prior contents
    /// are overwritten.
    pub fn solve_lower_into(&self, b: &[f64], z: &mut [f64]) {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        assert_eq!(z.len(), n, "output length mismatch");
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l.get(i, k) * z[k];
            }
            z[i] = sum / self.l.get(i, i);
            debug_assert!(
                z[i].is_finite(),
                "non-finite forward-substitution result at row {i}"
            );
        }
    }

    /// Solves `L^T x = z` (backward substitution).
    pub fn solve_upper(&self, z: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(z.len(), n, "rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for k in (i + 1)..n {
                sum -= self.l.get(k, i) * x[k];
            }
            x[i] = sum / self.l.get(i, i);
            debug_assert!(
                x[i].is_finite(),
                "non-finite backward-substitution result at row {i}"
            );
        }
        x
    }

    /// Solves the SPD system `A x = b` where `A = L L^T`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log |A| = 2 * sum(log diag(L))`, used by GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows())
            .map(|i| self.l.get(i, i).ln())
            .sum::<f64>()
            * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = B^T B + I for a fixed B, guaranteed SPD.
        Matrix::from_rows(3, 3, &[5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0])
    }

    #[test]
    fn factor_roundtrip() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        assert!(recon.approx_eq(&a, 1e-9), "{recon:?} vs {a:?}");
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd3();
        let ch = Cholesky::decompose(&a).unwrap();
        let b = [1.0, -2.0, 0.5];
        let x = ch.solve(&b);
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(b.iter()) {
            assert!((l - r).abs() < 1e-9, "{ax:?} vs {b:?}");
        }
    }

    #[test]
    fn log_det_of_identity_is_zero() {
        let ch = Cholesky::decompose(&Matrix::identity(5)).unwrap();
        assert!(ch.log_det().abs() < 1e-12);
    }

    #[test]
    fn log_det_of_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.set(0, 0, 2.0);
        a.set(1, 1, 3.0);
        a.set(2, 2, 4.0);
        let ch = Cholesky::decompose(&a).unwrap();
        assert!((ch.log_det() - (24.0f64).ln()).abs() < 1e-10);
    }

    #[test]
    fn non_square_rejected() {
        assert_eq!(
            Cholesky::decompose(&Matrix::zeros(2, 3)).unwrap_err(),
            CholeskyError::NotSquare
        );
    }

    #[test]
    fn negative_definite_rejected() {
        let a = &Matrix::identity(3) * -1.0;
        assert_eq!(
            Cholesky::decompose(&a).unwrap_err(),
            CholeskyError::NotPositiveDefinite
        );
    }

    #[test]
    fn near_singular_recovers_with_jitter() {
        // Two identical rows/cols make the Gram matrix rank-deficient; the
        // adaptive jitter must still produce a usable factorization.
        let a = Matrix::from_rows(3, 3, &[1.0, 1.0, 0.5, 1.0, 1.0, 0.5, 0.5, 0.5, 1.0]);
        let ch = Cholesky::decompose(&a).expect("jitter should rescue rank-deficient matrix");
        assert!(ch.jitter > 0.0);
        let x = ch.solve(&[1.0, 1.0, 1.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }
}

//! Summary statistics for the evaluation harness.
//!
//! The paper reports means over test environments, 90th-percentile
//! latencies/rebuffering ratios (Fig. 17), Pearson correlation coefficients
//! (Fig. 6), and fractions of environments where one policy beats another
//! (Fig. 2b, Fig. 15). These helpers implement exactly those reductions.

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance; `0.0` for slices shorter than 2.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Percentile in `[0, 100]` with linear interpolation between order
/// statistics (the "linear" method of numpy, which the paper's Python
/// analysis scripts use by default).
///
/// # Panics
/// Panics on an empty slice or a percentile outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    debug_assert!(xs.iter().all(|v| !v.is_nan()), "NaN in percentile input");
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Pearson correlation coefficient between paired samples.
///
/// Returns `0.0` when either side has zero variance (the convention that
/// suits plotting pipelines; a constant series carries no correlation
/// signal).
///
/// # Panics
/// Panics if the slices have different lengths.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "pearson requires paired samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys.iter()) {
        let dx = x - mx;
        let dy = y - my;
        cov += dx * dy;
        vx += dx * dx;
        vy += dy * dy;
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// Fraction of indices where `a[i] < b[i]` — e.g. the fraction of test
/// environments where the RL policy falls behind the rule-based baseline
/// (Figure 2b), or the complement for Figure 15.
pub fn fraction_below(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    if a.is_empty() {
        return 0.0;
    }
    a.iter().zip(b.iter()).filter(|(x, y)| x < y).count() as f64 / a.len() as f64
}

/// Jain's fairness index `(Σx)² / (n · Σx²)` over per-flow allocations.
///
/// 1.0 when every flow receives the same share, approaching `1/n` when one
/// flow starves the rest. Degenerate inputs (empty slice, all-zero
/// allocations) report 1.0 — no flow is being treated unfairly when there
/// is nothing to divide.
///
/// # Panics
/// Panics on negative allocations: the index is only defined for
/// non-negative resource shares, and a negative throughput is a bug in the
/// caller's accounting.
pub fn jain_fairness(xs: &[f64]) -> f64 {
    assert!(
        xs.iter().all(|&x| x >= 0.0),
        "jain_fairness needs non-negative allocations"
    );
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// Earliest time from which a metric stays at or above `threshold` for the
/// rest of the series — the convergence time of a fairness (or utilization)
/// trajectory. Returns `None` when the series never converges (including
/// the empty series).
///
/// # Panics
/// Panics when `times` and `values` have different lengths.
pub fn convergence_time(times: &[f64], values: &[f64], threshold: f64) -> Option<f64> {
    assert_eq!(
        times.len(),
        values.len(),
        "convergence_time requires paired samples"
    );
    // Scan backwards: the suffix [i..] must sit entirely above threshold.
    let mut first = None;
    for i in (0..values.len()).rev() {
        if values[i] >= threshold {
            first = Some(times[i]);
        } else {
            break;
        }
    }
    first
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution via the Abramowitz–Stegun 7.1.26
/// rational approximation of `erf` (|error| < 1.5e-7), plenty for the
/// Expected-Improvement acquisition in `genet-bo`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

/// Error function approximation (Abramowitz–Stegun 7.1.26).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Welford online mean/variance accumulator; used where an experiment streams
/// millions of per-step rewards and storing them all would be wasteful.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Feeds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Running mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Running population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Running standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A compact five-number summary, the unit of most TSV rows the benchmark
/// harness emits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub mean: f64,
    pub std: f64,
    pub min: f64,
    pub p50: f64,
    pub p90: f64,
    pub max: f64,
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    /// Panics on an empty slice.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "Summary::of empty slice");
        Self {
            mean: mean(xs),
            std: std_dev(xs),
            min: xs.iter().cloned().fold(f64::INFINITY, f64::min),
            p50: percentile(xs, 50.0),
            p90: percentile(xs, 90.0),
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            n: xs.len(),
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "mean={:.4} std={:.4} p50={:.4} p90={:.4} min={:.4} max={:.4} n={}",
            self.mean, self.std, self.p50, self.p90, self.min, self.max, self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_var_known() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 4.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert!((percentile(&xs, 50.0) - 2.5).abs() < 1e-12);
        assert!((percentile(&xs, 90.0) - 3.7).abs() < 1e-12);
    }

    #[test]
    fn pearson_perfect_and_anti() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let zs = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &zs) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_constant_is_zero() {
        assert_eq!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
    }

    #[test]
    fn fraction_below_counts() {
        let rl = [1.0, 5.0, 2.0, 9.0];
        let base = [2.0, 4.0, 3.0, 8.0];
        assert!((fraction_below(&rl, &base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn online_matches_batch() {
        let xs = [0.3, -1.2, 4.5, 2.2, 0.0, 7.7, -3.3];
        let mut o = OnlineStats::new();
        for &x in &xs {
            o.push(x);
        }
        assert!((o.mean() - mean(&xs)).abs() < 1e-12);
        assert!((o.variance() - variance(&xs)).abs() < 1e-10);
        assert_eq!(o.min(), -3.3);
        assert_eq!(o.max(), 7.7);
    }

    #[test]
    fn online_merge_matches_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..40] {
            a.push(x);
        }
        for &x in &xs[40..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - mean(&xs)).abs() < 1e-10);
        assert!((a.variance() - variance(&xs)).abs() < 1e-10);
        assert_eq!(a.count(), 100);
    }

    #[test]
    fn summary_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
    }

    #[test]
    #[should_panic(expected = "Summary::of empty slice")]
    fn summary_rejects_empty() {
        let _ = Summary::of(&[]);
    }

    #[test]
    fn jain_equal_allocations_are_perfectly_fair() {
        assert_eq!(jain_fairness(&[3.0, 3.0, 3.0, 3.0]), 1.0);
        assert_eq!(jain_fairness(&[7.5]), 1.0);
    }

    #[test]
    fn jain_starvation_approaches_one_over_n() {
        let idx = jain_fairness(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12, "{idx}");
    }

    #[test]
    fn jain_known_textbook_value() {
        // Jain's original example: allocations (1, 2, 3) → 36 / (3·14).
        let idx = jain_fairness(&[1.0, 2.0, 3.0]);
        assert!((idx - 36.0 / 42.0).abs() < 1e-12, "{idx}");
    }

    #[test]
    fn jain_degenerate_inputs_are_fair() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn jain_rejects_negative_allocations() {
        let _ = jain_fairness(&[1.0, -0.5]);
    }

    #[test]
    fn convergence_time_finds_the_last_crossing() {
        let times = [0.0, 1.0, 2.0, 3.0, 4.0];
        // Dips back below threshold at t=2, converges for good at t=3.
        let values = [0.2, 0.96, 0.5, 0.97, 0.99];
        assert_eq!(convergence_time(&times, &values, 0.95), Some(3.0));
    }

    #[test]
    fn convergence_time_immediate_and_never() {
        let times = [0.0, 1.0, 2.0];
        assert_eq!(convergence_time(&times, &[1.0, 1.0, 1.0], 0.9), Some(0.0));
        assert_eq!(convergence_time(&times, &[0.1, 0.2, 0.3], 0.9), None);
        assert_eq!(convergence_time(&[], &[], 0.9), None);
    }

    #[test]
    #[should_panic(expected = "paired samples")]
    fn convergence_time_rejects_mismatched_lengths() {
        let _ = convergence_time(&[0.0], &[1.0, 2.0], 0.5);
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_pdf_peak_and_symmetry() {
        assert!((normal_pdf(0.0) - 0.398_942_28).abs() < 1e-7);
        assert!((normal_pdf(1.3) - normal_pdf(-1.3)).abs() < 1e-12);
    }

    #[test]
    fn erf_is_odd_and_saturates() {
        assert!((erf(0.5) + erf(-0.5)).abs() < 1e-12);
        assert!((erf(3.0) - 0.99998).abs() < 1e-4);
    }
}

//! # genet-math
//!
//! Mathematical substrate for the Genet reproduction.
//!
//! The Genet training framework needs a small but real numerical toolbox:
//!
//! * dense matrices and a Cholesky factorization for the Gaussian-process
//!   regression that drives Bayesian-optimization environment search
//!   ([`matrix`], [`cholesky`]),
//! * random samplers for the synthetic environment generators of the paper's
//!   Appendix A.2 — gaussian delay noise, exponential (Poisson-process)
//!   job inter-arrivals, Pareto job sizes ([`samplers`]),
//! * summary statistics used throughout the evaluation — means, percentiles,
//!   Pearson correlation for Figure 6 ([`stats`]),
//! * deterministic seed derivation so every experiment is reproducible from
//!   a single `--seed` ([`rng`]).
//!
//! Everything is implemented from scratch on `std` + `rand` so the workspace
//! builds fully offline and the numerical behaviour is auditable.

#![forbid(unsafe_code)]

pub mod cholesky;
pub mod matrix;
pub mod rng;
pub mod samplers;
pub mod stats;

pub use cholesky::Cholesky;
pub use matrix::Matrix;
pub use rng::{derive_seed, derive_seed3, split_seed};
pub use samplers::{
    clamp, poisson_interarrival, sample_exponential, sample_gaussian, sample_pareto,
    sample_standard_gaussian,
};
pub use stats::{
    convergence_time, erf, fraction_below, jain_fairness, mean, median, normal_cdf, normal_pdf,
    pearson, percentile, std_dev, variance, OnlineStats, Summary,
};

//! Dense row-major `f64` matrices.
//!
//! Sized for the Gaussian-process regression in `genet-bo`: the kernel
//! matrices there are at most a few hundred rows (one per BO observation), so
//! a straightforward row-major implementation with `O(n^3)` multiply is both
//! simple and fast enough. No BLAS, no unsafe.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix of the given shape filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major slice.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: &[f64]) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "shape mismatch: {rows}x{cols} vs {}",
            data.len()
        );
        debug_assert!(
            data.iter().all(|v| v.is_finite()),
            "non-finite element in matrix data"
        );
        Self {
            rows,
            cols,
            data: data.to_vec(),
        }
    }

    /// Creates a column vector (n x 1) from a slice.
    pub fn col_vec(data: &[f64]) -> Self {
        Self::from_rows(data.len(), 1, data)
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        debug_assert!(
            v.is_finite(),
            "non-finite matrix element at ({r}, {c}): {v}"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to element `(r, c)`.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(
            v.is_finite(),
            "non-finite matrix increment at ({r}, {c}): {v}"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Borrow of one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(r, k);
                if a == 0.0 {
                    continue;
                }
                for c in 0..rhs.cols {
                    out.add_at(r, c, a * rhs.get(k, c));
                }
            }
        }
        out
    }

    /// Multiplies every element by a scalar, in place.
    pub fn scale_mut(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// `self * v` for a vector given as a slice; returns the result vector.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        let mut out = vec![0.0; self.rows];
        for r in 0..self.rows {
            let row = self.row(r);
            let mut acc = 0.0;
            for (a, b) in row.iter().zip(v.iter()) {
                acc += a * b;
            }
            out[r] = acc;
        }
        out
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// True when every pairwise element difference is below `tol`.
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        write!(f, "]")
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add shape mismatch"
        );
        let data: Vec<f64> = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub shape mismatch"
        );
        let data: Vec<f64> = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let mut out = self.clone();
        out.scale_mut(s);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert!(i2.matmul(&a).approx_eq(&a, 1e-12));
        assert!(a.matmul(&i3).approx_eq(&a, 1e-12));
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[5.0, 6.0, 7.0, 8.0]);
        let c = a.matmul(&b);
        assert!(c.approx_eq(&Matrix::from_rows(2, 2, &[19.0, 22.0, 43.0, 50.0]), 1e-12));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert!(a.transpose().transpose().approx_eq(&a, 0.0));
        assert_eq!(a.transpose().rows(), 3);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let v = [1.0, 0.5, -1.0];
        let mv = a.matvec(&v);
        let col = a.matmul(&Matrix::col_vec(&v));
        assert_eq!(mv, col.as_slice().to_vec());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Matrix::from_rows(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_rows(2, 2, &[0.5, 0.5, 0.5, 0.5]);
        let c = &(&a + &b) - &b;
        assert!(c.approx_eq(&a, 1e-12));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }
}

//! Random samplers used by the synthetic environment generators (paper §A.2).
//!
//! * gaussian — delay noise on CC packets,
//! * exponential — Poisson-process job inter-arrival times in the LB
//!   workload generator,
//! * Pareto — LB job sizes ("job sizes follow a Pareto distribution"),
//!
//! each implemented by inverse-CDF / Box–Muller so that no extra crate is
//! needed and the exact sampling logic is visible and testable.

use rand::Rng;

/// Samples a standard normal via the Box–Muller transform.
#[inline]
pub fn sample_standard_gaussian<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite.
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `N(mean, std^2)`.
#[inline]
pub fn sample_gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    mean + std * sample_standard_gaussian(rng)
}

/// Samples an exponential with the given rate `lambda` (mean `1/lambda`).
///
/// Inter-arrival times of a Poisson process with rate `lambda`.
///
/// # Panics
/// Panics if `lambda <= 0`.
#[inline]
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    assert!(
        lambda > 0.0,
        "exponential rate must be positive, got {lambda}"
    );
    let u: f64 = 1.0 - rng.random::<f64>();
    -u.ln() / lambda
}

/// Samples a Pareto distribution with the given `shape` (alpha) and `scale`
/// (x_min) by inverse CDF: `x = scale / U^(1/shape)`.
///
/// # Panics
/// Panics if `shape <= 0` or `scale <= 0`.
#[inline]
pub fn sample_pareto<R: Rng + ?Sized>(rng: &mut R, shape: f64, scale: f64) -> f64 {
    assert!(shape > 0.0 && scale > 0.0, "pareto params must be positive");
    let u: f64 = 1.0 - rng.random::<f64>();
    scale / u.powf(1.0 / shape)
}

/// Convenience alias used by the LB workload generator: next arrival gap of a
/// Poisson process with mean inter-arrival `mean_interval`.
#[inline]
pub fn poisson_interarrival<R: Rng + ?Sized>(rng: &mut R, mean_interval: f64) -> f64 {
    sample_exponential(rng, 1.0 / mean_interval)
}

/// Clamps a sample into `[lo, hi]`; used to keep noisy trace values physical
/// (bandwidth and timestamps cannot go negative).
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{mean, variance};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const N: usize = 200_000;

    fn draws(f: impl Fn(&mut StdRng) -> f64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(7);
        (0..N).map(|_| f(&mut rng)).collect()
    }

    #[test]
    fn gaussian_moments() {
        let xs = draws(|r| sample_gaussian(r, 3.0, 2.0));
        assert!((mean(&xs) - 3.0).abs() < 0.03, "mean {}", mean(&xs));
        assert!((variance(&xs) - 4.0).abs() < 0.1, "var {}", variance(&xs));
    }

    #[test]
    fn exponential_moments() {
        let xs = draws(|r| sample_exponential(r, 0.5));
        // mean = 1/lambda = 2, var = 1/lambda^2 = 4.
        assert!((mean(&xs) - 2.0).abs() < 0.05);
        assert!((variance(&xs) - 4.0).abs() < 0.2);
        assert!(xs.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn pareto_support_and_mean() {
        let (shape, scale) = (3.0, 2.0);
        let xs = draws(|r| sample_pareto(r, shape, scale));
        assert!(
            xs.iter().all(|&x| x >= scale),
            "Pareto support starts at scale"
        );
        // mean = shape*scale/(shape-1) = 3.
        assert!((mean(&xs) - 3.0).abs() < 0.05, "mean {}", mean(&xs));
    }

    #[test]
    fn poisson_interarrival_mean() {
        let xs = draws(|r| poisson_interarrival(r, 0.25));
        assert!((mean(&xs) - 0.25).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "exponential rate must be positive")]
    fn exponential_rejects_bad_rate() {
        let mut rng = StdRng::seed_from_u64(0);
        sample_exponential(&mut rng, 0.0);
    }

    #[test]
    fn clamp_behaviour() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }
}

//! Deterministic seed derivation.
//!
//! Every Genet experiment fans out into many stochastic components (trace
//! generators, environment instantiations, policy initialization, BO
//! proposals). To keep a whole experiment reproducible from one `--seed`
//! while keeping the streams statistically independent, sub-seeds are derived
//! with SplitMix64 — the same finalizer used to seed xoshiro/PCG generators.

/// One SplitMix64 step: maps a seed to a well-mixed 64-bit value.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from `(seed, stream)`.
///
/// Distinct `stream` labels give statistically independent streams, so e.g.
/// trace generation and policy initialization can share one user-facing seed
/// without correlated randomness.
#[inline]
pub fn derive_seed(seed: u64, stream: u64) -> u64 {
    splitmix64(seed ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

/// Derives an independent sub-seed from `(seed, stream_a, stream_b)` — a
/// two-level stream label, e.g. `(training seed, iteration, episode index)`
/// for the parallel rollout engine, where every episode needs its own RNG
/// stream that is a pure function of its coordinates.
#[inline]
pub fn derive_seed3(seed: u64, stream_a: u64, stream_b: u64) -> u64 {
    derive_seed(derive_seed(seed, stream_a), stream_b)
}

/// Splits one seed into `n` independent sub-seeds.
pub fn split_seed(seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| derive_seed(seed, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(42, 7), derive_seed(42, 7));
    }

    #[test]
    fn streams_differ() {
        assert_ne!(derive_seed(42, 0), derive_seed(42, 1));
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0));
    }

    #[test]
    fn derive_seed3_is_coordinate_sensitive() {
        assert_eq!(derive_seed3(42, 3, 9), derive_seed3(42, 3, 9));
        assert_ne!(derive_seed3(42, 3, 9), derive_seed3(42, 9, 3));
        assert_ne!(derive_seed3(42, 3, 9), derive_seed3(42, 3, 10));
        assert_ne!(derive_seed3(42, 3, 9), derive_seed3(43, 3, 9));
        // Two-level derivation matches chaining the one-level form.
        assert_eq!(derive_seed3(1, 2, 3), derive_seed(derive_seed(1, 2), 3));
    }

    #[test]
    fn split_seed_unique() {
        let seeds = split_seed(123, 1000);
        let set: HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(
            set.len(),
            1000,
            "sub-seeds must be collision-free in practice"
        );
    }

    #[test]
    fn splitmix_known_vector() {
        // Reference value from the canonical SplitMix64 implementation
        // (Vigna): splitmix64 state 0 produces 0xE220A8397B1DCDAF.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}

//! Determinism & numeric-safety static analysis for the Genet workspace.
#![forbid(unsafe_code)]

pub mod config;
pub mod manifest;
pub mod rules;
pub mod scan;
pub mod tokenizer;

pub use config::LintConfig;
pub use rules::{Diagnostic, RuleId, TargetKind};
pub use scan::{find_workspace_root, lint_source, lint_workspace};

//! Determinism & numeric-safety static analysis for the Genet workspace.
//!
//! Pipeline: [`lexer`] (real Rust tokens) → [`model`] (brace-matched token
//! tree, items, closures, captures, annotations) → [`rules`] (scope-aware
//! scanners) → [`scan`] (workspace walk + suppression) → [`emit`]
//! (text/json/sarif/github). Rule specs live in DESIGN.md §13.
#![forbid(unsafe_code)]
// Token-tree walking is index-based throughout (`match_of` jumps need the
// indices); iterator rewrites would obscure the cursor arithmetic.
#![allow(clippy::needless_range_loop)]

pub mod config;
pub mod emit;
pub mod lexer;
pub mod manifest;
pub mod model;
pub mod rules;
pub mod scan;

pub use config::LintConfig;
pub use emit::Format;
pub use rules::{Diagnostic, RuleId, TargetKind};
pub use scan::{find_workspace_root, lint_crate, lint_source, lint_workspace};

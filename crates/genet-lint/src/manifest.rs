//! Dependency-hygiene rule: parses Cargo manifests (a minimal TOML subset —
//! sections, `key = value`, inline tables, `#` comments) and enforces the
//! repo's zero-registry-dependency policy:
//!
//! - member crates may only declare dependencies as `{ workspace = true }`
//!   (or a direct `{ path = "..." }` inside the repo);
//! - the root `[workspace.dependencies]` must resolve every entry to an
//!   in-tree `path`, never a registry `version`, `git`, or `registry` key.

use crate::rules::{Diagnostic, RuleId};
use std::path::Path;

/// Checks a member crate's `Cargo.toml`.
pub fn check_member_manifest(path: &Path, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let file = path.display().to_string();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            // Dotted dependency section: [dependencies.foo] etc.
            if let Some(dep) = dep_section_entry(&section) {
                // Inspect the whole sub-table: collected below via keys.
                // We record the entry and validate on the fly by scanning
                // its keys until the next section; handled by the
                // `in_dep_subtable` state.
                let _ = dep;
            }
            continue;
        }
        if is_dep_section(&section) {
            if let Some((name, value)) = line.split_once('=') {
                let name = name.trim();
                let value = value.trim();
                if !dep_value_ok(value) {
                    out.push(Diagnostic {
                        file: file.clone(),
                        line: idx + 1,
                        col: 1,
                        rule: RuleId::DependencyHygiene,
                        message: format!(
                            "dependency `{name}` must be `{{ workspace = true }}` (or an \
                             in-tree path); registry/git dependencies are forbidden: `{value}`"
                        ),
                    });
                }
            }
        } else if let Some(dep) = dep_section_entry(&section) {
            // Inside [dependencies.foo]: only workspace/path/package/features
            // keys are acceptable.
            if let Some((key, _)) = line.split_once('=') {
                let key = key.trim();
                if matches!(
                    key,
                    "version" | "git" | "registry" | "branch" | "tag" | "rev"
                ) {
                    out.push(Diagnostic {
                        file: file.clone(),
                        line: idx + 1,
                        col: 1,
                        rule: RuleId::DependencyHygiene,
                        message: format!(
                            "dependency `{dep}` uses `{key}`: registry/git dependencies \
                             are forbidden (use `workspace = true` or an in-tree path)"
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Checks the root workspace `Cargo.toml`.
pub fn check_workspace_manifest(path: &Path, text: &str) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let file = path.display().to_string();
    let mut section = String::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().to_string();
            if section.starts_with("patch") {
                out.push(Diagnostic {
                    file: file.clone(),
                    line: idx + 1,
                    col: 1,
                    rule: RuleId::DependencyHygiene,
                    message: "[patch] sections are forbidden; vendor the crate under \
                              third_party/ instead"
                        .to_string(),
                });
            }
            continue;
        }
        if section == "workspace.dependencies" {
            if let Some((name, value)) = line.split_once('=') {
                let name = name.trim();
                let value = value.trim();
                let has_path = value.contains("path");
                let registryish = ["version", "git =", "registry =", "branch ="]
                    .iter()
                    .any(|k| value.contains(k))
                    || value.starts_with('"');
                if !has_path || registryish {
                    out.push(Diagnostic {
                        file: file.clone(),
                        line: idx + 1,
                        col: 1,
                        rule: RuleId::DependencyHygiene,
                        message: format!(
                            "workspace dependency `{name}` must resolve to an in-tree \
                             `path` (crates/ or third_party/), not a registry/git source: \
                             `{value}`"
                        ),
                    });
                }
            }
        }
    }
    out
}

fn is_dep_section(section: &str) -> bool {
    matches!(
        section,
        "dependencies" | "dev-dependencies" | "build-dependencies"
    )
}

fn dep_section_entry(section: &str) -> Option<&str> {
    for prefix in ["dependencies.", "dev-dependencies.", "build-dependencies."] {
        if let Some(rest) = section.strip_prefix(prefix) {
            return Some(rest);
        }
    }
    None
}

/// An inline dependency value is acceptable iff it pins to the workspace
/// table or an in-tree path and names no registry/git source.
fn dep_value_ok(value: &str) -> bool {
    let workspace = value.contains("workspace") && value.contains("true");
    let path = value.contains("path") && value.contains("\"");
    let registryish = value.starts_with('"')
        || value.contains("version")
        || value.contains("git ")
        || value.contains("git=")
        || value.contains("registry");
    (workspace || path) && !registryish
}

fn strip_comment(line: &str) -> &str {
    // `#` never appears inside strings in this repo's manifests.
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn member(text: &str) -> Vec<Diagnostic> {
        check_member_manifest(&PathBuf::from("crates/x/Cargo.toml"), text)
    }

    fn workspace(text: &str) -> Vec<Diagnostic> {
        check_workspace_manifest(&PathBuf::from("Cargo.toml"), text)
    }

    #[test]
    fn workspace_true_and_path_ok() {
        let d = member(
            "[package]\nname = \"x\"\n[dependencies]\nrand = { workspace = true }\ngenet-math = { path = \"../genet-math\" }\n",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn registry_versions_flagged() {
        let d = member("[dependencies]\nserde = \"1.0\"\n");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::DependencyHygiene);
        let d = member("[dependencies]\ntokio = { version = \"1\", features = [\"full\"] }\n");
        assert_eq!(d.len(), 1);
        let d = member("[dependencies.serde]\nversion = \"1.0\"\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn workspace_deps_must_be_paths() {
        let d = workspace("[workspace.dependencies]\nrand = { path = \"third_party/rand\" }\n");
        assert!(d.is_empty(), "{d:?}");
        let d = workspace("[workspace.dependencies]\nrand = \"0.9\"\n");
        assert_eq!(d.len(), 1);
        let d = workspace("[workspace.dependencies]\nx = { git = \"https://e.com/x\" }\n");
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn patch_sections_forbidden() {
        let d = workspace("[patch.crates-io]\nrand = { path = \"vendored\" }\n");
        assert_eq!(d.len(), 1);
    }
}

//! A real (zero-dependency) Rust lexer: turns source text into a token
//! stream with line/column spans, plus the comment stream the annotation
//! parser feeds on.
//!
//! This is still not a full parser — there is no AST — but unlike the old
//! per-line cleaner it produces genuine tokens: raw strings with hash
//! fences, byte/char literals vs lifetimes, nested block comments, compound
//! operators (`+=`, `::`, `=>`, …) and delimiter tokens that the
//! [`crate::model`] layer brace-matches into a token tree. Literal *text*
//! is preserved on the token (rules like `thread-count-branching` must see
//! `"GENET_THREADS"` inside a string), but string/char contents can never
//! be mistaken for code because they are distinct token kinds.

/// Delimiter flavor of an [`TokKind::Open`]/[`TokKind::Close`] token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delim {
    Paren,
    Bracket,
    Brace,
}

/// Lexical class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `HashMap`, …).
    Ident,
    /// Lifetime tick + name (`'a`, `'static`).
    Lifetime,
    /// Integer literal (including hex/octal/binary and suffixed forms).
    NumInt,
    /// Float literal (`1.0`, `2.`, `1e-3`, `0.5f64`).
    NumFloat,
    /// String-ish literal (normal, raw, byte, byte-raw). Text keeps the
    /// full source spelling including quotes/hashes.
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation, possibly compound (`+=`, `::`, `=>`, `..=`, `|`).
    Punct,
    Open(Delim),
    Close(Delim),
}

/// One lexed token with its 1-based source position (char columns).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

#[allow(clippy::len_without_is_empty)] // a lexed token is never empty
impl Tok {
    /// Char length of the token in source (raw strings included).
    pub fn len(&self) -> usize {
        self.text.chars().count()
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }
}

/// One comment (or one line of a multi-line block comment).
#[derive(Debug, Clone)]
pub struct Comment {
    pub line: usize,
    pub text: String,
    /// Doc comments (`///`, `//!`, `/** */`) never carry annotations.
    pub doc: bool,
}

/// Lexer output: the token stream plus comments and the line count.
#[derive(Debug, Default)]
pub struct LexOut {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub line_count: usize,
}

/// Compound operators, longest first (single chars fall through).
const COMPOUND_PUNCTS: [&str; 22] = [
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "..",
];

/// Lexes a whole file. Unterminated literals/comments are closed at EOF
/// (the lint must degrade gracefully, never panic, on odd input).
pub fn lex(source: &str) -> LexOut {
    let chars: Vec<char> = source.chars().collect();
    let mut out = LexOut {
        line_count: source.lines().count(),
        ..LexOut::default()
    };
    let mut i = 0;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let (tline, tcol) = (line, col);

        // Whitespace.
        if c.is_whitespace() {
            bump!();
            continue;
        }

        // Line comment (incl. doc).
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'))
                // `////…` dividers are plain comments, not docs.
                && chars.get(i + 3) != Some(&'/');
            let mut text = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text.push(chars[i]);
                bump!();
            }
            let body = text.trim_start_matches('/').trim_start_matches('!');
            out.comments.push(Comment {
                line: tline,
                text: body.to_string(),
                doc,
            });
            continue;
        }

        // Block comment (nested), one Comment entry per source line.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let doc = chars.get(i + 2) == Some(&'*') && chars.get(i + 3) != Some(&'*');
            let mut depth = 0usize;
            let mut text = String::new();
            let mut text_line = tline;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    bump!();
                    bump!();
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    bump!();
                    bump!();
                    if depth == 0 {
                        break;
                    }
                } else {
                    if chars[i] == '\n' {
                        out.comments.push(Comment {
                            line: text_line,
                            text: std::mem::take(&mut text),
                            doc,
                        });
                        text_line = line + 1;
                    } else {
                        text.push(chars[i]);
                    }
                    bump!();
                }
            }
            if !text.trim().is_empty() {
                out.comments.push(Comment {
                    line: text_line,
                    text,
                    doc,
                });
            }
            continue;
        }

        // Raw / byte string starts: r"…", r#"…"#, br"…", b"…".
        if let Some((prefix_len, hashes)) = raw_string_start(&chars, i) {
            let mut text = String::new();
            for _ in 0..prefix_len {
                text.push(chars[i]);
                bump!();
            }
            // Consume until `"` followed by `hashes` hashes.
            while i < chars.len() {
                if chars[i] == '"' && (0..hashes).all(|k| chars.get(i + 1 + k) == Some(&'#')) {
                    for _ in 0..=hashes {
                        text.push(chars[i]);
                        bump!();
                    }
                    break;
                }
                text.push(chars[i]);
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"')) {
            let mut text = String::new();
            if c == 'b' {
                text.push('b');
                bump!();
            }
            text.push(chars[i]);
            bump!(); // opening quote
            while i < chars.len() {
                if chars[i] == '\\' {
                    text.push(chars[i]);
                    bump!();
                    if i < chars.len() {
                        text.push(chars[i]);
                        bump!();
                    }
                } else if chars[i] == '"' {
                    text.push(chars[i]);
                    bump!();
                    break;
                } else {
                    text.push(chars[i]);
                    bump!();
                }
            }
            out.toks.push(Tok {
                kind: TokKind::Str,
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Byte-char literal b'x'.
        if c == 'b' && chars.get(i + 1) == Some(&'\'') {
            if let Some(consumed) = char_literal(&chars, i + 1) {
                let text: String = chars[i..i + 1 + consumed].iter().collect();
                for _ in 0..1 + consumed {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line: tline,
                    col: tcol,
                });
                continue;
            }
        }

        // Char literal vs lifetime.
        if c == '\'' {
            if let Some(consumed) = char_literal(&chars, i) {
                let text: String = chars[i..i + consumed].iter().collect();
                for _ in 0..consumed {
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Char,
                    text,
                    line: tline,
                    col: tcol,
                });
            } else {
                // Lifetime: tick plus ident chars.
                let mut text = String::from('\'');
                bump!();
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    bump!();
                }
                out.toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text,
                    line: tline,
                    col: tcol,
                });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut float = false;
            let radix_prefixed = c == '0'
                && matches!(
                    chars.get(i + 1),
                    Some(&'x') | Some(&'o') | Some(&'b') | Some(&'X') | Some(&'O') | Some(&'B')
                );
            if radix_prefixed {
                text.push(chars[i]);
                bump!();
                text.push(chars[i]);
                bump!();
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
            } else {
                while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                    text.push(chars[i]);
                    bump!();
                }
                // Fractional part: `.` NOT followed by `.` or an ident start
                // (so `1..n` stays a range and `1.max(2)` a method call).
                if i < chars.len()
                    && chars[i] == '.'
                    && chars.get(i + 1) != Some(&'.')
                    && !chars.get(i + 1).copied().is_some_and(is_ident_start)
                {
                    float = true;
                    text.push(chars[i]);
                    bump!();
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!();
                    }
                }
                // Exponent.
                if i < chars.len()
                    && (chars[i] == 'e' || chars[i] == 'E')
                    && (chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())
                        || (matches!(chars.get(i + 1), Some(&'+') | Some(&'-'))
                            && chars.get(i + 2).is_some_and(|c| c.is_ascii_digit())))
                {
                    float = true;
                    text.push(chars[i]);
                    bump!();
                    if matches!(chars.get(i), Some(&'+') | Some(&'-')) {
                        text.push(chars[i]);
                        bump!();
                    }
                    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                        text.push(chars[i]);
                        bump!();
                    }
                }
                // Suffix (`f64`, `u32`, …).
                let suffix_at = text.len();
                while i < chars.len() && is_ident_continue(chars[i]) {
                    text.push(chars[i]);
                    bump!();
                }
                if text[suffix_at..].starts_with("f32") || text[suffix_at..].starts_with("f64") {
                    float = true;
                }
            }
            out.toks.push(Tok {
                kind: if float {
                    TokKind::NumFloat
                } else {
                    TokKind::NumInt
                },
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Identifiers / keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Ident,
                text,
                line: tline,
                col: tcol,
            });
            continue;
        }

        // Delimiters.
        let delim = match c {
            '(' => Some((TokKind::Open(Delim::Paren), "(")),
            ')' => Some((TokKind::Close(Delim::Paren), ")")),
            '[' => Some((TokKind::Open(Delim::Bracket), "[")),
            ']' => Some((TokKind::Close(Delim::Bracket), "]")),
            '{' => Some((TokKind::Open(Delim::Brace), "{")),
            '}' => Some((TokKind::Close(Delim::Brace), "}")),
            _ => None,
        };
        if let Some((kind, text)) = delim {
            out.toks.push(Tok {
                kind,
                text: text.to_string(),
                line: tline,
                col: tcol,
            });
            bump!();
            continue;
        }

        // Compound punctuation, longest match first.
        let mut matched = None;
        for p in COMPOUND_PUNCTS {
            let pl = p.chars().count();
            if chars[i..].len() >= pl && chars[i..i + pl].iter().collect::<String>() == p {
                matched = Some(p);
                break;
            }
        }
        if let Some(p) = matched {
            for _ in 0..p.chars().count() {
                bump!();
            }
            out.toks.push(Tok {
                kind: TokKind::Punct,
                text: p.to_string(),
                line: tline,
                col: tcol,
            });
            continue;
        }

        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: tline,
            col: tcol,
        });
        bump!();
    }
    out
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Matches `r"`, `r#"`, `br"`, `br##"` … at `i`; returns `(chars through the
/// opening quote, hash count)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

/// Matches a char literal `'x'`, `'\n'`, `'\u{1F600}'` at `i`; returns its
/// char length, or `None` for a lifetime tick.
fn char_literal(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i + 1;
    match chars.get(j)? {
        '\\' => {
            j += 1;
            if chars.get(j) == Some(&'u') {
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
                j -= 1; // the loop stops ON the quote; rewind for the +1 below
            }
            j += 1;
        }
        '\'' => return None, // '' is not a char literal
        _ => j += 1,
    }
    if chars.get(j) == Some(&'\'') {
        Some(j + 1 - i)
    } else {
        None // lifetime like 'a or 'static
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strips_line_and_block_comments() {
        let out = lex("let x = 1; // HashMap here\nlet y = /* HashSet */ 2;\n");
        assert!(!idents("let x = 1; // HashMap here\n").contains(&"HashMap".to_string()));
        assert!(out.comments.iter().any(|c| c.text.contains("HashMap")));
        assert!(!out
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "HashSet"));
    }

    #[test]
    fn string_contents_are_not_idents() {
        let out = lex("let s = \"HashMap in a string\"; let t = 5;\n");
        assert!(!out
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "HashMap"));
        let s = out.toks.iter().find(|t| t.kind == TokKind::Str).unwrap();
        assert!(s.text.contains("HashMap"));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let out = lex("let s = r#\"Instant::now \"quoted\" {\"#; let ok = 1;\n");
        assert!(!out.toks.iter().any(|t| t.is_ident("Instant")));
        // The `{` inside the raw string must not open a group.
        assert!(!out
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Open(Delim::Brace)));
        assert!(out.toks.iter().any(|t| t.is_ident("ok")));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let out = lex("let c = '{'; let q = '\"'; let l: &'static str = \"x\"; fn f<'a>() {}\n");
        let chars: Vec<&str> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Char)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(chars, vec!["'{'", "'\"'"]);
        let lifes: Vec<&str> = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifes, vec!["'static", "'a"]);
        // The '{' char literal must not unbalance braces: exactly one
        // open/close pair from `{}`.
        let opens = out
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Open(Delim::Brace))
            .count();
        assert_eq!(opens, 1);
    }

    #[test]
    fn escaped_char_literals() {
        let out = lex(r"let a = '\''; let b = '\n'; let c = '\u{1F600}';");
        let chars = out.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(chars, 3);
    }

    #[test]
    fn nested_block_comments() {
        let out = lex("/* outer /* inner HashMap */ still */ let ok = 1;\n");
        assert!(!out.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(out.toks.iter().any(|t| t.is_ident("ok")));
    }

    #[test]
    fn multiline_block_comment_and_string() {
        let out =
            lex("/* start\nHashMap\n*/ let a = 1;\nlet s = \"multi\nInstant::now\n line\"; let b = 2;\n");
        assert!(!out.toks.iter().any(|t| t.is_ident("HashMap")));
        assert!(!out.toks.iter().any(|t| t.is_ident("Instant")));
        assert!(out.toks.iter().any(|t| t.is_ident("a")));
        assert!(out.toks.iter().any(|t| t.is_ident("b")));
        // Comment text is recorded per line.
        assert!(out
            .comments
            .iter()
            .any(|c| c.line == 2 && c.text.contains("HashMap")));
    }

    #[test]
    fn numbers_int_vs_float() {
        let kinds: Vec<(String, TokKind)> =
            lex("1 1.0 2. 1e-3 0x1F 0b10 1_000 0.5f64 3usize 1..n 4.max(5)")
                .toks
                .iter()
                .filter(|t| matches!(t.kind, TokKind::NumInt | TokKind::NumFloat))
                .map(|t| (t.text.clone(), t.kind))
                .collect();
        let float = |s: &str| kinds.iter().any(|(t, k)| t == s && *k == TokKind::NumFloat);
        let int = |s: &str| kinds.iter().any(|(t, k)| t == s && *k == TokKind::NumInt);
        assert!(int("1") && float("1.0") && float("2.") && float("1e-3"));
        assert!(int("0x1F") && int("0b10") && int("1_000"));
        assert!(float("0.5f64") && int("3usize"));
        // range and method-call dots stay out of the number token
        assert!(int("4") && int("5"));
    }

    #[test]
    fn compound_puncts_lexed_whole() {
        let puncts: Vec<String> = lex("a += b; c ..= d; x == y; p -> q; m => n; v <<= w;")
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        for p in ["+=", "..=", "==", "->", "=>", "<<="] {
            assert!(puncts.iter().any(|t| t == p), "missing {p}: {puncts:?}");
        }
    }

    #[test]
    fn doc_comments_are_marked() {
        let out =
            lex("/// doc with genet-lint: allow(x) words\n//! inner doc\n// plain\nfn f() {}\n");
        assert_eq!(out.comments.len(), 3);
        assert!(out.comments[0].doc);
        assert!(out.comments[1].doc);
        assert!(!out.comments[2].doc);
    }

    #[test]
    fn positions_are_one_based_chars() {
        let out = lex("let x = 1;\n  let y = 2;\n");
        let y = out.toks.iter().find(|t| t.is_ident("y")).unwrap();
        assert_eq!((y.line, y.col), (2, 7));
    }
}

//! CLI for the Genet determinism & numeric-safety lint.
//!
//! Usage: `cargo run -p genet-lint --release -- --workspace [--root <dir>]`
//!
//! Exits 0 on a clean tree, 1 with `file:line: [rule] message` diagnostics
//! on violations, 2 on usage/IO errors.

use genet_lint::lint_workspace;
use genet_lint::scan::find_workspace_root;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "genet-lint: determinism & numeric-safety static analysis\n\n\
                     USAGE:\n    genet-lint --workspace [--root <dir>]\n\n\
                     Scans crates/*/src/**/*.rs and every Cargo.toml for violations of\n\
                     the workspace determinism invariants (see DESIGN.md). Rules:\n"
                );
                for rule in genet_lint::RuleId::ALL {
                    println!("    {}", rule.name());
                }
                println!(
                    "\nEscape hatch: `// genet-lint: allow(<rule>) <justification>` on or\n\
                     above the offending line; per-crate opt-outs live in genet-lint.toml."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace to scan the workspace");
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(root) => root,
        None => return usage("could not locate the workspace root (try --root)"),
    };

    match lint_workspace(&root) {
        Ok(diagnostics) if diagnostics.is_empty() => {
            eprintln!("genet-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(diagnostics) => {
            for d in &diagnostics {
                println!("{d}");
            }
            eprintln!("genet-lint: {} violation(s)", diagnostics.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("genet-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("genet-lint: {msg}\nusage: genet-lint --workspace [--root <dir>]");
    ExitCode::from(2)
}

//! CLI for the Genet determinism & numeric-safety lint.
//!
//! Usage: `cargo run -p genet-lint --release -- --workspace
//!         [--root <dir>] [--format text|json|sarif|github]
//!         [--output <path> [--output-format <fmt>]]`
//!
//! Exits 0 on a clean tree, 1 with diagnostics on violations, 2 on
//! usage/IO errors. `--format` picks the stdout rendering; `--output`
//! additionally writes a report to a file, in `--output-format` (default:
//! the stdout format). CI uses `--format github --output genet-lint.sarif
//! --output-format sarif` — inline PR annotations plus a SARIF artifact
//! from a single scan.

use genet_lint::emit::{render, Format};
use genet_lint::lint_workspace;
use genet_lint::scan::find_workspace_root;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut workspace = false;
    let mut root: Option<PathBuf> = None;
    let mut format = Format::Text;
    let mut output: Option<PathBuf> = None;
    let mut output_format: Option<Format> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--format" => match args.next().as_deref().map(Format::from_name) {
                Some(Some(f)) => format = f,
                _ => return usage("--format needs one of: text, json, sarif, github"),
            },
            "--output" => match args.next() {
                Some(path) => output = Some(PathBuf::from(path)),
                None => return usage("--output needs a file argument"),
            },
            "--output-format" => match args.next().as_deref().map(Format::from_name) {
                Some(Some(f)) => output_format = Some(f),
                _ => return usage("--output-format needs one of: text, json, sarif, github"),
            },
            "--help" | "-h" => {
                println!(
                    "genet-lint: determinism & numeric-safety static analysis\n\n\
                     USAGE:\n    genet-lint --workspace [--root <dir>]\n\
                     \x20                [--format text|json|sarif|github]\n\
                     \x20                [--output <path> [--output-format <fmt>]]\n\n\
                     Scans crates/*/src/**/*.rs and every Cargo.toml for violations of\n\
                     the workspace determinism invariants (see DESIGN.md §13). Rules:\n"
                );
                for rule in genet_lint::RuleId::ALL {
                    println!("    {}", rule.name());
                }
                println!(
                    "\nEscape hatch: `// genet-lint: allow(<rule>) <justification>` on or\n\
                     above the offending line; per-crate opt-outs live in genet-lint.toml."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    if !workspace {
        return usage("pass --workspace to scan the workspace");
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(root) => root,
        None => return usage("could not locate the workspace root (try --root)"),
    };

    match lint_workspace(&root) {
        Ok(diagnostics) => {
            if let Some(path) = &output {
                let file_report = render(output_format.unwrap_or(format), &diagnostics);
                if let Err(e) = std::fs::write(path, &file_report) {
                    eprintln!("genet-lint: error: {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
            let report = render(format, &diagnostics);
            if !(report.is_empty() || (format == Format::Text && diagnostics.is_empty())) {
                print!("{report}");
            }
            if diagnostics.is_empty() {
                eprintln!("genet-lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                eprintln!("genet-lint: {} violation(s)", diagnostics.len());
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("genet-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "genet-lint: {msg}\nusage: genet-lint --workspace [--root <dir>] \
         [--format text|json|sarif|github] [--output <path> [--output-format <fmt>]]"
    );
    ExitCode::from(2)
}

//! Diagnostic emitters: plain text, JSON, SARIF 2.1.0 and GitHub Actions
//! workflow commands. All hand-rolled (the lint is zero-dependency by
//! design — the dependency-hygiene rule applies to its own crate).

use crate::rules::{Diagnostic, RuleId};
use std::fmt::Write as _;

/// Output format selected by `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    Text,
    Json,
    Sarif,
    Github,
}

impl Format {
    pub fn from_name(name: &str) -> Option<Format> {
        match name {
            "text" => Some(Format::Text),
            "json" => Some(Format::Json),
            "sarif" => Some(Format::Sarif),
            "github" => Some(Format::Github),
            _ => None,
        }
    }
}

/// Renders diagnostics in the chosen format. Text/github end with a
/// trailing newline per finding; json/sarif are single documents.
pub fn render(format: Format, diagnostics: &[Diagnostic]) -> String {
    match format {
        Format::Text => text(diagnostics),
        Format::Json => json(diagnostics),
        Format::Sarif => sarif(diagnostics),
        Format::Github => github(diagnostics),
    }
}

fn text(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        let _ = writeln!(out, "{d}");
    }
    out
}

/// Minimal JSON string escaping (control chars, quotes, backslash).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            esc(&d.file),
            d.line,
            d.col,
            d.rule.name(),
            esc(&d.message)
        );
    }
    if !diagnostics.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// SARIF 2.1.0, minimal profile: one run, one rule descriptor per distinct
/// rule, one result per diagnostic. Valid for GitHub code scanning upload.
fn sarif(diagnostics: &[Diagnostic]) -> String {
    let mut rules: Vec<RuleId> = Vec::new();
    for d in diagnostics {
        if !rules.contains(&d.rule) {
            rules.push(d.rule);
        }
    }
    let mut out = String::new();
    out.push_str("{\n  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"genet-lint\",\n");
    out.push_str("          \"informationUri\": \"DESIGN.md\",\n");
    out.push_str("          \"rules\": [\n");
    for (i, r) in rules.iter().enumerate() {
        let _ = writeln!(
            out,
            "            {{\"id\": \"{}\"}}{}",
            r.name(),
            if i + 1 < rules.len() { "," } else { "" }
        );
    }
    out.push_str("          ]\n        }\n      },\n");
    out.push_str("      \"results\": [\n");
    for (i, d) in diagnostics.iter().enumerate() {
        let _ = writeln!(
            out,
            "        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}, \"startColumn\": {}}}}}}}]}}{}",
            d.rule.name(),
            esc(&d.message),
            esc(&d.file),
            d.line,
            d.col,
            if i + 1 < diagnostics.len() { "," } else { "" }
        );
    }
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

/// GitHub Actions workflow commands: `::error file=…,line=…,col=…::…`
/// renders as inline PR annotations. Newlines/percent in the message use
/// the Actions escaping rules.
fn github(diagnostics: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diagnostics {
        let msg = d
            .message
            .replace('%', "%25")
            .replace('\r', "%0D")
            .replace('\n', "%0A");
        let _ = writeln!(
            out,
            "::error file={},line={},col={},title=genet-lint {}::{}",
            d.file,
            d.line,
            d.col,
            d.rule.name(),
            msg
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 3,
                col: 7,
                rule: RuleId::WallClock,
                message: "Instant::now \"quoted\"".into(),
            },
            Diagnostic {
                file: "crates/x/src/lib.rs".into(),
                line: 9,
                col: 1,
                rule: RuleId::UnusedAllow,
                message: "stale".into(),
            },
        ]
    }

    #[test]
    fn text_matches_display() {
        let t = render(Format::Text, &sample());
        assert!(t.contains("crates/x/src/lib.rs:3:7: [wall-clock-in-result-path]"));
        assert_eq!(t.lines().count(), 2);
    }

    #[test]
    fn json_escapes_and_lists_all() {
        let j = render(Format::Json, &sample());
        assert!(j.contains("\\\"quoted\\\""), "{j}");
        assert!(j.contains("\"line\": 3"));
        assert!(j.contains("\"rule\": \"unused-allow\""));
        // Must not contain a raw interior quote sequence that breaks JSON.
        assert!(!j.contains(": \"Instant::now \""));
    }

    #[test]
    fn empty_json_is_an_empty_array() {
        assert_eq!(render(Format::Json, &[]), "[]\n");
    }

    #[test]
    fn sarif_has_schema_rules_and_results() {
        let s = render(Format::Sarif, &sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"id\": \"wall-clock-in-result-path\""));
        assert!(s.contains("\"startLine\": 3"));
        assert!(s.contains("\"startColumn\": 7"));
        assert!(s.contains("\"uri\": \"crates/x/src/lib.rs\""));
    }

    #[test]
    fn github_commands_escape_newlines() {
        let mut d = sample();
        d[0].message = "a\nb%c".into();
        let g = render(Format::Github, &d);
        assert!(g.starts_with("::error file=crates/x/src/lib.rs,line=3,col=7"));
        assert!(g.contains("a%0Ab%25c"));
    }

    #[test]
    fn format_names_resolve() {
        for (n, f) in [
            ("text", Format::Text),
            ("json", Format::Json),
            ("sarif", Format::Sarif),
            ("github", Format::Github),
        ] {
            assert_eq!(Format::from_name(n), Some(f));
        }
        assert_eq!(Format::from_name("xml"), None);
    }
}

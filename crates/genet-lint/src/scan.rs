//! Workspace walking and per-file orchestration: builds the structural
//! model for each source file, applies the scope-aware rules, then
//! subtracts `allow` annotations and per-crate config, reporting stale
//! annotations as findings of their own.

use crate::config::LintConfig;
use crate::manifest;
use crate::model;
use crate::rules::{scan_model, Diagnostic, RuleId, TargetKind};
use std::path::{Path, PathBuf};

/// Lints one source file's text. `file` is the label used in diagnostics
/// (and consulted by file-sanctioned rules like env-read-in-result-path);
/// `crate_name` selects per-crate config.
pub fn lint_source(
    file: &str,
    crate_name: &str,
    kind: TargetKind,
    source: &str,
    config: &LintConfig,
) -> Vec<Diagnostic> {
    let m = model::build(source);
    let mut annotations = m.annotations.clone();
    let mut out = Vec::new();

    for finding in scan_model(&m, kind, file) {
        if config.crate_allows(crate_name, finding.rule) {
            continue;
        }
        let suppressed = annotations.iter_mut().find(|a| {
            a.target_line == finding.line
                && a.rule == finding.rule.name()
                && !a.justification.is_empty()
        });
        if let Some(annotation) = suppressed {
            annotation.used = true;
            continue;
        }
        out.push(Diagnostic {
            file: file.to_string(),
            line: finding.line,
            col: finding.col,
            rule: finding.rule,
            message: finding.message,
        });
    }

    for annotation in &annotations {
        if RuleId::from_name(&annotation.rule).is_none() {
            out.push(Diagnostic {
                file: file.to_string(),
                line: annotation.comment_line,
                col: 1,
                rule: RuleId::UnusedAllow,
                message: format!("allow({}) names an unknown rule", annotation.rule),
            });
            continue;
        }
        if annotation.justification.is_empty() {
            out.push(Diagnostic {
                file: file.to_string(),
                line: annotation.comment_line,
                col: 1,
                rule: RuleId::MissingJustification,
                message: format!(
                    "allow({}) needs a written justification after the closing paren",
                    annotation.rule
                ),
            });
            continue;
        }
        if !annotation.used {
            out.push(Diagnostic {
                file: file.to_string(),
                line: annotation.comment_line,
                col: 1,
                rule: RuleId::UnusedAllow,
                message: format!(
                    "allow({}) suppresses nothing on line {} — remove the stale annotation",
                    annotation.rule, annotation.target_line
                ),
            });
        }
    }

    out.sort_by_key(|d| (d.line, d.col));
    out
}

/// Lints the sources and manifest of one member crate directory.
fn lint_crate_dir(
    root: &Path,
    crate_dir: &Path,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    let crate_name = crate_dir
        .file_name()
        .map(|n| n.to_string_lossy().to_string())
        .unwrap_or_default();
    let src = crate_dir.join("src");
    if src.is_dir() {
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for path in files {
            let kind = classify(&src, &path);
            let text =
                std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
            let label = relative_label(root, &path);
            out.extend(lint_source(&label, &crate_name, kind, &text, config));
        }
    }
    let manifest_path = crate_dir.join("Cargo.toml");
    if manifest_path.is_file() {
        let text = std::fs::read_to_string(&manifest_path)
            .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
        let label = PathBuf::from(relative_label(root, &manifest_path));
        out.extend(manifest::check_member_manifest(&label, &text));
    }
    Ok(out)
}

/// Lints one member crate by name (used by the self-lint tests).
pub fn lint_crate(root: &Path, crate_name: &str) -> Result<Vec<Diagnostic>, String> {
    let config = LintConfig::load(root)?;
    let crate_dir = root.join("crates").join(crate_name);
    if !crate_dir.is_dir() {
        return Err(format!("no such crate dir: {}", crate_dir.display()));
    }
    lint_crate_dir(root, &crate_dir, &config)
}

/// Lints the whole workspace rooted at `root`: every `crates/*/src/**/*.rs`
/// plus dependency hygiene over all manifests.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let config = LintConfig::load(root)?;
    let mut out = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs = list_dir(&crates_dir)?;
    crate_dirs.sort();
    for crate_dir in &crate_dirs {
        if !crate_dir.is_dir() {
            continue;
        }
        out.extend(lint_crate_dir(root, crate_dir, &config)?);
    }

    // third_party shims: manifest hygiene only (their sources mirror
    // external APIs and are exempt from the style rules by design).
    let third_party = root.join("third_party");
    if third_party.is_dir() {
        let mut shim_dirs = list_dir(&third_party)?;
        shim_dirs.sort();
        for dir in shim_dirs {
            let manifest_path = dir.join("Cargo.toml");
            if manifest_path.is_file() {
                let text = std::fs::read_to_string(&manifest_path)
                    .map_err(|e| format!("{}: {e}", manifest_path.display()))?;
                let label = PathBuf::from(relative_label(root, &manifest_path));
                out.extend(manifest::check_member_manifest(&label, &text));
            }
        }
    }

    let root_manifest = root.join("Cargo.toml");
    let text = std::fs::read_to_string(&root_manifest)
        .map_err(|e| format!("{}: {e}", root_manifest.display()))?;
    out.extend(manifest::check_workspace_manifest(
        Path::new("Cargo.toml"),
        &text,
    ));

    Ok(out)
}

/// Finds the workspace root by walking up from `start` until a `Cargo.toml`
/// containing `[workspace]` appears.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(d);
                }
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn classify(src_root: &Path, path: &Path) -> TargetKind {
    let rel = path.strip_prefix(src_root).unwrap_or(path);
    let rel_str = rel.to_string_lossy();
    if rel_str.starts_with("bin/") || rel_str == "main.rs" {
        TargetKind::Bin
    } else {
        TargetKind::Lib
    }
}

fn list_dir(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        out.push(entry.path());
    }
    Ok(out)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    for path in list_dir(dir)? {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn relative_label(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .display()
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(src: &str, kind: TargetKind) -> Vec<Diagnostic> {
        lint_source("test.rs", "genet-test", kind, src, &LintConfig::default())
    }

    #[test]
    fn annotation_suppresses_and_is_marked_used() {
        let src = "let t0 = Instant::now(); // genet-lint: allow(wall-clock-in-result-path) telemetry-only busy-time, never in results\n";
        assert!(lint(src, TargetKind::Lib).is_empty());
    }

    #[test]
    fn annotation_without_justification_fails() {
        let src = "let t0 = Instant::now(); // genet-lint: allow(wall-clock-in-result-path)\n";
        let d = lint(src, TargetKind::Lib);
        assert!(
            d.iter().any(|d| d.rule == RuleId::MissingJustification),
            "{d:?}"
        );
    }

    #[test]
    fn stale_annotation_fails() {
        let src = "let x = 1; // genet-lint: allow(unordered-iteration) nothing here\n";
        let d = lint(src, TargetKind::Lib);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn unknown_rule_annotation_fails() {
        let src = "let x = 1; // genet-lint: allow(no-such-rule) whatever\n";
        let d = lint(src, TargetKind::Lib);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, RuleId::UnusedAllow);
    }

    #[test]
    fn preceding_line_annotation_targets_next_code_line() {
        let src = "// genet-lint: allow(unordered-iteration) lookup only, iteration never escapes\nuse std::collections::HashMap;\n";
        assert!(lint(src, TargetKind::Lib).is_empty());
    }

    #[test]
    fn crate_config_switches_rule_off() {
        let cfg =
            LintConfig::parse("[crate.genet-test]\nallow = [\"wall-clock-in-result-path\"]\n")
                .expect("parses");
        let src = "let t0 = Instant::now();\n";
        let d = lint_source("t.rs", "genet-test", TargetKind::Lib, src, &cfg);
        assert!(d.is_empty(), "{d:?}");
        let d = lint_source("t.rs", "genet-other", TargetKind::Lib, src, &cfg);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn diagnostics_point_at_lines_and_columns() {
        let src = "fn ok() {}\nuse std::collections::HashSet;\n";
        let d = lint(src, TargetKind::Lib);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].col, 23, "col of the HashSet token");
        assert!(d[0]
            .to_string()
            .contains("test.rs:2:23: [unordered-iteration]"));
    }

    #[test]
    fn new_rule_names_resolve_for_annotations() {
        // An allow() naming a v2 rule must parse and suppress.
        let src = "fn f(xs: &[f32]) { xs.sort_unstable_by(|a, b| b.total_cmp(a)); } // genet-lint: allow(nonreproducible-sort) keys are distinct by construction\n";
        assert!(lint(src, TargetKind::Lib).is_empty());
    }
}

//! Line-oriented Rust tokenizer: strips comments, string/char literals, and
//! locates `#[cfg(test)]` regions and `genet-lint: allow(...)` annotations,
//! so the rule scanners only ever look at real code text.
//!
//! This is deliberately not a full parser (no `syn`, zero dependencies). It
//! tracks exactly the lexical state needed to blank out non-code text:
//! nested block comments, line comments, string literals (including raw
//! strings with hashes and byte strings), and char literals vs lifetimes.

/// One source line after lexical cleaning.
#[derive(Debug, Clone)]
pub struct CleanLine {
    /// 1-based line number.
    pub number: usize,
    /// Code text with comments and literals blanked by spaces (same length
    /// as the raw line, so column positions survive).
    pub code: String,
    /// Comment text on this line (concatenated, without `//` / `/*`), used
    /// for annotation parsing.
    pub comment: String,
    /// True if the line has any non-whitespace code at all.
    pub has_code: bool,
    /// True if this line lies inside a `#[cfg(test)]` block.
    pub in_test: bool,
}

/// Parsed `genet-lint: allow(<rule>) <justification>` annotation.
#[derive(Debug, Clone)]
pub struct AllowAnnotation {
    /// Line the annotation comment sits on.
    pub comment_line: usize,
    /// Line the annotation applies to (same line for trailing comments,
    /// next code line for whole-line comments).
    pub target_line: usize,
    pub rule: String,
    pub justification: String,
    /// Set by the scanner when the annotation suppresses a diagnostic.
    pub used: bool,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Lex {
    Code,
    Block { depth: usize },
    Str,
    RawStr { hashes: usize },
}

/// Tokenizes a whole file into cleaned lines plus annotations.
pub fn tokenize(source: &str) -> (Vec<CleanLine>, Vec<AllowAnnotation>) {
    let mut state = Lex::Code;
    let mut lines = Vec::new();
    let mut raw_comments: Vec<(usize, String, bool)> = Vec::new(); // (line, text, line_has_code)

    for (idx, raw) in source.lines().enumerate() {
        let number = idx + 1;
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            match state {
                Lex::Block { depth } => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        state = if depth == 1 {
                            Lex::Code
                        } else {
                            Lex::Block { depth: depth - 1 }
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = Lex::Block { depth: depth + 1 };
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment.push(chars[i]);
                        code.push(' ');
                        i += 1;
                    }
                }
                Lex::Str => {
                    if chars[i] == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '"' {
                        state = Lex::Code;
                        code.push('"');
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Lex::RawStr { hashes } => {
                    if chars[i] == '"' && closes_raw(&chars, i + 1, hashes) {
                        state = Lex::Code;
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        i += 1 + hashes;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                Lex::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: rest of line. Doc comments (`///`,
                        // `//!`) are documentation *about* code — they may
                        // describe the annotation syntax but never carry a
                        // real suppression, so their text is not collected.
                        let is_doc = matches!(chars.get(i + 2), Some(&'/') | Some(&'!'));
                        if !is_doc {
                            let text: String = chars[i + 2..].iter().collect();
                            comment.push_str(&text);
                        }
                        for _ in i..chars.len() {
                            code.push(' ');
                        }
                        break;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = Lex::Block { depth: 1 };
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = Lex::Str;
                        code.push('"');
                        i += 1;
                    } else if let Some((consumed, hashes)) = raw_string_start(&chars, i) {
                        state = Lex::RawStr { hashes };
                        code.push('r');
                        for _ in 0..consumed - 2 {
                            code.push(' ');
                        }
                        code.push('"');
                        i += consumed;
                    } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident(&code) {
                        state = Lex::Str;
                        code.push_str("b\"");
                        i += 2;
                    } else if c == '\'' {
                        if let Some(consumed) = char_literal(&chars, i) {
                            code.push('\'');
                            for _ in 1..consumed {
                                code.push(' ');
                            }
                            i += consumed;
                        } else {
                            // Lifetime tick.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
        let has_code = code.trim().chars().any(|c| !c.is_whitespace());
        if !comment.trim().is_empty() {
            raw_comments.push((number, comment.clone(), has_code));
        }
        lines.push(CleanLine {
            number,
            code,
            comment,
            has_code,
            in_test: false,
        });
    }

    mark_test_regions(&mut lines);
    let annotations = parse_annotations(&raw_comments, &lines);
    (lines, annotations)
}

fn prev_is_ident(code: &str) -> bool {
    code.chars()
        .last()
        .is_some_and(|c| c.is_alphanumeric() || c == '_')
}

/// Matches `r"`, `r#"`, `br"`, `br##"` ... at position `i`; returns
/// `(consumed chars through the opening quote, hash count)`.
fn raw_string_start(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    if i > 0 {
        let p = chars[i - 1];
        if p.is_alphanumeric() || p == '_' {
            return None;
        }
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j + 1 - i, hashes))
    } else {
        None
    }
}

fn closes_raw(chars: &[char], from: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Matches a char literal `'x'`, `'\n'`, `'\u{1F600}'` at `i`; returns its
/// length in chars, or `None` for a lifetime tick.
fn char_literal(chars: &[char], i: usize) -> Option<usize> {
    debug_assert_eq!(chars.get(i), Some(&'\''));
    let mut j = i + 1;
    match chars.get(j)? {
        '\\' => {
            j += 1;
            if chars.get(j) == Some(&'u') {
                while j < chars.len() && chars[j] != '\'' {
                    j += 1;
                }
            } else {
                j += 1;
            }
        }
        '\'' => return None, // '' is not a char literal
        _ => j += 1,
    }
    if chars.get(j) == Some(&'\'') {
        Some(j + 1 - i)
    } else {
        None // lifetime like 'a or 'static
    }
}

/// Flags every line inside a `#[cfg(test)] { ... }` region (the block that
/// the attribute introduces, typically `mod tests`).
fn mark_test_regions(lines: &mut [CleanLine]) {
    let mut pending_attr = false;
    let mut region_depth: Option<i64> = None;
    for line in lines.iter_mut() {
        let code = line.code.clone();
        if let Some(depth) = region_depth.as_mut() {
            line.in_test = true;
            *depth += brace_delta(&code);
            if *depth <= 0 {
                region_depth = None;
            }
            continue;
        }
        if code.contains("#[cfg(test)]") {
            pending_attr = true;
            // Same-line open brace (e.g. `#[cfg(test)] mod t {`)?
            if let Some(pos) = code.find("#[cfg(test)]") {
                let rest = &code[pos..];
                if rest.contains('{') {
                    line.in_test = true;
                    let d = brace_delta(rest);
                    if d > 0 {
                        region_depth = Some(d);
                    }
                    pending_attr = false;
                    continue;
                }
            }
            line.in_test = true; // the attribute line itself
            continue;
        }
        if pending_attr {
            line.in_test = true;
            if line.has_code {
                let d = brace_delta(&code);
                if d > 0 {
                    region_depth = Some(d);
                    pending_attr = false;
                } else if code.contains(';') {
                    // `#[cfg(test)] mod foo;` — out-of-line module.
                    pending_attr = false;
                }
            }
        }
    }
}

fn brace_delta(code: &str) -> i64 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// Extracts `genet-lint: allow(rule) justification` annotations and computes
/// the code line each one targets.
fn parse_annotations(
    comments: &[(usize, String, bool)],
    lines: &[CleanLine],
) -> Vec<AllowAnnotation> {
    let mut out = Vec::new();
    for (line_no, text, line_has_code) in comments {
        let Some(pos) = text.find("genet-lint:") else {
            continue;
        };
        let rest = text[pos + "genet-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let justification = rest[close + 1..].trim().to_string();
        let target_line = if *line_has_code {
            *line_no
        } else {
            lines
                .iter()
                .find(|l| l.number > *line_no && l.has_code)
                .map(|l| l.number)
                .unwrap_or(*line_no)
        };
        out.push(AllowAnnotation {
            comment_line: *line_no,
            target_line,
            rule,
            justification,
            used: false,
        });
    }
    out
}

/// True when `token` occurs in `code` as a standalone identifier-ish token
/// (not embedded in a longer identifier).
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(token) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + token.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + token.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let src = "let x = 1; // HashMap here\nlet y = /* HashSet */ 2;\n";
        let (lines, _) = tokenize(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
        assert!(!lines[1].code.contains("HashSet"));
        assert!(lines[1].code.contains("let y ="));
    }

    #[test]
    fn strips_string_literals_and_keeps_char_positions() {
        let src = "let s = \"HashMap in a string\"; let t = 5;\n";
        let (lines, _) = tokenize(src);
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("let t = 5;"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let src =
            "let s = r#\"Instant::now \"quoted\"\"#; let c = '\\''; let l: &'static str = \"x\";\n";
        let (lines, _) = tokenize(src);
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("'static"));
    }

    #[test]
    fn multiline_block_comment_and_string() {
        let src = "/* start\nHashMap\n*/ let a = 1;\nlet s = \"multi\nInstant::now\n line\"; let b = 2;\n";
        let (lines, _) = tokenize(src);
        assert!(!lines[1].code.contains("HashMap"));
        assert!(lines[2].code.contains("let a = 1;"));
        assert!(!lines[4].code.contains("Instant"));
        assert!(lines[5].code.contains("let b = 2;"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let ok = 1;\n";
        let (lines, _) = tokenize(src);
        assert!(lines[0].code.contains("let ok = 1;"));
        assert!(!lines[0].code.contains("inner"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}\n";
        let (lines, _) = tokenize(src);
        assert!(!lines[0].in_test);
        assert!(lines[1].in_test);
        assert!(lines[2].in_test);
        assert!(lines[3].in_test);
        assert!(lines[4].in_test);
        assert!(!lines[5].in_test);
    }

    #[test]
    fn annotations_trailing_and_preceding() {
        let src = "let a = m.unwrap(); // genet-lint: allow(panic-in-library) startup only\n// genet-lint: allow(unordered-iteration) order never escapes\nlet b: HashMap<u32, u32> = HashMap::new();\n";
        let (_, anns) = tokenize(src);
        assert_eq!(anns.len(), 2);
        assert_eq!(anns[0].target_line, 1);
        assert_eq!(anns[0].rule, "panic-in-library");
        assert!(anns[0].justification.contains("startup"));
        assert_eq!(anns[1].target_line, 3);
        assert_eq!(anns[1].rule, "unordered-iteration");
    }

    #[test]
    fn doc_comments_never_carry_annotations() {
        let src = "/// Write `// genet-lint: allow(some-rule) why` above the line.\n//! Docs may mention genet-lint: allow(other-rule) too.\nfn f() {}\n";
        let (_, anns) = tokenize(src);
        assert!(anns.is_empty(), "{anns:?}");
    }

    #[test]
    fn find_token_respects_boundaries() {
        assert!(find_token("let m: HashMap<u8, u8>;", "HashMap").is_some());
        assert!(find_token("let m = MyHashMapLike::new();", "HashMap").is_none());
        assert!(find_token("rand::rngs::StdRng", "rand::rng").is_none());
        assert!(find_token("let r = rand::rng();", "rand::rng").is_some());
    }
}

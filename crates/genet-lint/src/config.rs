//! Per-crate rule configuration, loaded from `genet-lint.toml` at the
//! workspace root. Minimal TOML subset: `[crate.<name>]` sections with an
//! `allow = ["rule", ...]` key and `#` comments.
//!
//! ```toml
//! [crate.genet-telemetry]
//! allow = ["wall-clock-in-result-path"]
//! ```

use crate::rules::RuleId;
use std::collections::BTreeMap;
use std::path::Path;

/// Workspace lint configuration: which rules are switched off per crate.
#[derive(Debug, Default, Clone)]
pub struct LintConfig {
    per_crate_allows: BTreeMap<String, Vec<RuleId>>,
}

impl LintConfig {
    /// Loads `genet-lint.toml` from `root`; a missing file is an empty
    /// config, a malformed file is an error.
    pub fn load(root: &Path) -> Result<LintConfig, String> {
        let path = root.join("genet-lint.toml");
        match std::fs::read_to_string(&path) {
            Ok(text) => LintConfig::parse(&text).map_err(|e| format!("{}: {e}", path.display())),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(LintConfig::default()),
            Err(e) => Err(format!("{}: {e}", path.display())),
        }
    }

    pub fn parse(text: &str) -> Result<LintConfig, String> {
        let mut config = LintConfig::default();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = strip_toml_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(section) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                let section = section.trim();
                current = match section.strip_prefix("crate.") {
                    Some(name) => Some(name.trim().to_string()),
                    None => {
                        return Err(format!(
                            "line {}: unknown section [{section}] (expected [crate.<name>])",
                            idx + 1
                        ))
                    }
                };
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", idx + 1));
            };
            let crate_name = current
                .clone()
                .ok_or_else(|| format!("line {}: key outside [crate.<name>] section", idx + 1))?;
            match key.trim() {
                "allow" => {
                    let rules = parse_string_array(value.trim())
                        .map_err(|e| format!("line {}: {e}", idx + 1))?;
                    let mut ids = Vec::new();
                    for rule in rules {
                        let id = RuleId::from_name(&rule)
                            .ok_or_else(|| format!("line {}: unknown rule `{rule}`", idx + 1))?;
                        ids.push(id);
                    }
                    config
                        .per_crate_allows
                        .entry(crate_name)
                        .or_default()
                        .extend(ids);
                }
                other => return Err(format!("line {}: unknown key `{other}`", idx + 1)),
            }
        }
        Ok(config)
    }

    /// Is `rule` switched off wholesale for `crate_name`?
    pub fn crate_allows(&self, crate_name: &str, rule: RuleId) -> bool {
        self.per_crate_allows
            .get(crate_name)
            .is_some_and(|rules| rules.contains(&rule))
    }
}

fn strip_toml_comment(line: &str) -> &str {
    // Good enough for this config dialect: no `#` inside strings.
    match line.find('#') {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn parse_string_array(value: &str) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected a [\"...\"] array, got `{value}`"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let s = part
            .strip_prefix('"')
            .and_then(|p| p.strip_suffix('"'))
            .ok_or_else(|| format!("expected a quoted string, got `{part}`"))?;
        out.push(s.to_string());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_and_allows() {
        let cfg = LintConfig::parse(
            "# comment\n[crate.genet-telemetry]\nallow = [\"wall-clock-in-result-path\"]\n\n[crate.genet-bench]\nallow = [\"panic-in-library\", \"wall-clock-in-result-path\"]\n",
        )
        .expect("parses");
        assert!(cfg.crate_allows("genet-telemetry", RuleId::WallClock));
        assert!(!cfg.crate_allows("genet-telemetry", RuleId::PanicInLibrary));
        assert!(cfg.crate_allows("genet-bench", RuleId::PanicInLibrary));
        assert!(!cfg.crate_allows("genet-core", RuleId::WallClock));
    }

    #[test]
    fn rejects_unknown_rules_and_sections() {
        assert!(LintConfig::parse("[crate.x]\nallow = [\"no-such-rule\"]\n").is_err());
        assert!(LintConfig::parse("[lint]\n").is_err());
        assert!(LintConfig::parse("allow = [\"unseeded-rng\"]\n").is_err());
    }
}

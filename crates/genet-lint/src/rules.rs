//! The determinism & numeric-safety rules and the per-line scanners behind
//! them. Each rule documents the experiment invariant it protects; the
//! rationale lives in DESIGN.md ("Determinism invariants").

use crate::tokenizer::{find_token, CleanLine};

/// Stable rule identifiers (the names used in `allow(...)` annotations and
/// per-crate config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in result-path code: iteration order is
    /// randomized per-process, which silently breaks seeded reproducibility.
    UnorderedIteration,
    /// `Instant::now`/`SystemTime` outside telemetry/benchmark timing:
    /// wall-clock must never influence experiment results.
    WallClock,
    /// RNG constructed from ambient entropy instead of an explicit seed.
    UnseededRng,
    /// `as <int>` applied to a float expression: silent truncation/UB-adjacent
    /// saturation; must be an annotated, deliberate site.
    TruncatingCast,
    /// `.unwrap()`/`.expect(`/`panic!` in library (non-test) code.
    PanicInLibrary,
    /// Cargo.toml dependency that does not resolve inside the repository.
    DependencyHygiene,
    /// An `allow` annotation that suppressed nothing (stale escape hatch).
    UnusedAllow,
    /// An `allow` annotation without a written justification.
    MissingJustification,
}

impl RuleId {
    pub const ALL: [RuleId; 6] = [
        RuleId::UnorderedIteration,
        RuleId::WallClock,
        RuleId::UnseededRng,
        RuleId::TruncatingCast,
        RuleId::PanicInLibrary,
        RuleId::DependencyHygiene,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedIteration => "unordered-iteration",
            RuleId::WallClock => "wall-clock-in-result-path",
            RuleId::UnseededRng => "unseeded-rng",
            RuleId::TruncatingCast => "truncating-cast",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::DependencyHygiene => "dependency-hygiene",
            RuleId::UnusedAllow => "unused-allow",
            RuleId::MissingJustification => "missing-justification",
        }
    }

    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// What kind of compilation target a source file belongs to; decides which
/// rules apply (e.g. panic hygiene is a library-only rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` of a library crate.
    Lib,
    /// `src/bin/**` or `src/main.rs` — executable code.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**`.
    TestOrBench,
}

/// A single finding, formatted as `file:line: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: RuleId,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Scans one cleaned line for source-level violations. `kind` and
/// `in_test` gate rule applicability; suppression by annotations/config is
/// applied by the caller.
pub fn scan_line(line: &CleanLine, kind: TargetKind) -> Vec<(RuleId, String)> {
    let mut found = Vec::new();
    if !line.has_code {
        return found;
    }
    let code = line.code.as_str();

    // unseeded-rng: applies everywhere, `#[cfg(test)]` regions included —
    // unseeded tests flake.
    for token in [
        "thread_rng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "rand::rng",
    ] {
        if find_token(code, token).is_some() {
            found.push((
                RuleId::UnseededRng,
                format!("{token}: every RNG must be constructed from an explicit seed"),
            ));
        }
    }

    // All remaining rules only apply outside test regions.
    if line.in_test {
        return found;
    }

    // unordered-iteration: any appearance in lib/bin code — even a
    // non-iterated HashMap invites a later `for` loop; ordered containers
    // or an annotated justification are required.
    if kind != TargetKind::TestOrBench {
        for token in ["HashMap", "HashSet"] {
            if find_token(code, token).is_some() {
                found.push((
                    RuleId::UnorderedIteration,
                    format!(
                        "{token} in result-path code: iteration order is unstable; \
                         use BTreeMap/BTreeSet or a sorted Vec (or annotate why \
                         ordering can never escape)"
                    ),
                ));
            }
        }
    }

    // wall-clock-in-result-path.
    if kind != TargetKind::TestOrBench {
        for token in ["Instant", "SystemTime"] {
            if find_token(code, token).is_some() {
                found.push((
                    RuleId::WallClock,
                    format!(
                        "{token} in result-path code: wall-clock reads must stay \
                         inside genet-telemetry or annotated timing-only sites"
                    ),
                ));
            }
        }
    }

    // truncating-cast.
    if kind != TargetKind::TestOrBench {
        for (rule, msg) in truncating_casts(code) {
            found.push((rule, msg));
        }
    }

    // panic-in-library.
    if kind == TargetKind::Lib {
        for token in [
            ".unwrap()",
            ".expect(",
            "panic!",
            "unreachable!",
            "todo!",
            "unimplemented!",
        ] {
            let hit = if token.starts_with('.') {
                code.contains(token)
            } else {
                find_token(code, token).is_some()
            };
            if hit {
                found.push((
                    RuleId::PanicInLibrary,
                    format!(
                        "{} in library code: return Result or annotate why this \
                         cannot fail",
                        token.trim_start_matches('.')
                    ),
                ));
            }
        }
    }

    found
}

const INT_TARGETS: [&str; 10] = [
    "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
];

/// Detects `<float expression> as <integer type>` on a single line. The
/// float-ness heuristic looks for float literals, `f32`/`f64` tokens, or
/// float-producing method calls in the expression segment left of `as`.
fn truncating_casts(code: &str) -> Vec<(RuleId, String)> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(rel) = code[from..].find(" as ") {
        let at = from + rel;
        let after = code[at + 4..].trim_start();
        let target = INT_TARGETS.iter().find(|t| {
            after.starts_with(**t)
                && !after[t.len()..].starts_with(|c: char| c.is_alphanumeric() || c == '_')
        });
        if let Some(target) = target {
            let segment = expression_segment(&code[..at]);
            if looks_float(segment) {
                out.push((
                    RuleId::TruncatingCast,
                    format!(
                        "float expression cast with `as {target}` truncates; use \
                         .round()/.floor() with an annotated justification or \
                         checked conversion"
                    ),
                ));
            }
        }
        from = at + 4;
    }
    out
}

/// The slice of `code` belonging to the expression being cast: scan
/// backwards from the cast, balancing brackets, and cut at the first
/// top-level delimiter or unmatched opening bracket.
fn expression_segment(before: &str) -> &str {
    let mut depth = 0i32;
    let mut cut = 0;
    for (i, c) in before.char_indices().rev() {
        match c {
            ')' | ']' | '}' => depth += 1,
            '(' | '[' | '{' => {
                if depth > 0 {
                    depth -= 1;
                } else {
                    cut = i + c.len_utf8();
                    break;
                }
            }
            '=' | ',' | ';' if depth == 0 => {
                cut = i + c.len_utf8();
                break;
            }
            _ => {}
        }
    }
    &before[cut..]
}

fn looks_float(segment: &str) -> bool {
    if find_token(segment, "f64").is_some() || find_token(segment, "f32").is_some() {
        return true;
    }
    for m in [
        ".floor()", ".ceil()", ".round()", ".trunc()", ".sqrt()", ".abs()",
    ] {
        if segment.contains(m) {
            return true;
        }
    }
    // Float literal: digit '.' digit anywhere in the segment.
    let b: Vec<char> = segment.chars().collect();
    b.windows(3)
        .any(|w| w[0].is_ascii_digit() && w[1] == '.' && w[2].is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tokenizer::tokenize;

    fn scan_snippet(src: &str, kind: TargetKind) -> Vec<RuleId> {
        let (lines, _) = tokenize(src);
        lines
            .iter()
            .flat_map(|l| scan_line(l, kind))
            .map(|(r, _)| r)
            .collect()
    }

    #[test]
    fn truncating_cast_positive_and_negative() {
        assert_eq!(
            scan_snippet("let i = (x_s / 0.5) as usize;\n", TargetKind::Lib),
            vec![RuleId::TruncatingCast]
        );
        assert_eq!(
            scan_snippet("let i = t.elapsed().as_nanos() as u64;\n", TargetKind::Lib),
            Vec::<RuleId>::new()
        );
        assert_eq!(
            scan_snippet("let i = (r.floor()) as i64;\n", TargetKind::Lib),
            vec![RuleId::TruncatingCast]
        );
        assert_eq!(
            scan_snippet("let n = items.len() as u64;\n", TargetKind::Lib),
            Vec::<RuleId>::new()
        );
    }

    #[test]
    fn unwrap_only_in_lib_nontest() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        assert_eq!(
            scan_snippet(src, TargetKind::Lib),
            vec![RuleId::PanicInLibrary]
        );
        assert_eq!(scan_snippet(src, TargetKind::Bin), Vec::<RuleId>::new());
    }

    #[test]
    fn unwrap_or_family_not_flagged() {
        let src = "let a = x.unwrap_or(0); let b = y.unwrap_or_else(|| 1); let c = z.unwrap_or_default();\n";
        assert_eq!(scan_snippet(src, TargetKind::Lib), Vec::<RuleId>::new());
    }

    #[test]
    fn hash_containers_flagged_outside_tests() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            scan_snippet(src, TargetKind::Lib),
            vec![RuleId::UnorderedIteration]
        );
        assert_eq!(
            scan_snippet(src, TargetKind::TestOrBench),
            Vec::<RuleId>::new()
        );
    }

    #[test]
    fn wall_clock_flagged() {
        let src = "let t0 = Instant::now();\n";
        assert_eq!(scan_snippet(src, TargetKind::Lib), vec![RuleId::WallClock]);
        assert_eq!(scan_snippet(src, TargetKind::Bin), vec![RuleId::WallClock]);
        assert_eq!(
            scan_snippet(src, TargetKind::TestOrBench),
            Vec::<RuleId>::new()
        );
    }

    #[test]
    fn unseeded_rng_flagged_even_in_tests() {
        let src = "let mut rng = rand::rng();\n";
        assert_eq!(
            scan_snippet(src, TargetKind::TestOrBench),
            vec![RuleId::UnseededRng]
        );
        let in_test_region =
            "#[cfg(test)]\nmod tests {\n    fn t() { let mut rng = rand::rng(); }\n}\n";
        assert_eq!(
            scan_snippet(in_test_region, TargetKind::Lib),
            vec![RuleId::UnseededRng]
        );
        let ok = "let mut rng = StdRng::seed_from_u64(42);\n";
        assert_eq!(scan_snippet(ok, TargetKind::Lib), Vec::<RuleId>::new());
    }
}

//! The determinism & numeric-safety rules, now scope-aware: every scanner
//! walks the brace-matched token tree from [`crate::model`] instead of
//! matching line text. Each rule documents the experiment invariant it
//! protects; the full specs (and the capture-analysis model's blind spots)
//! live in DESIGN.md §13.

use crate::lexer::{Delim, Tok, TokKind};
use crate::model::FileModel;

/// Stable rule identifiers (the names used in `allow(...)` annotations and
/// per-crate config).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleId {
    /// `HashMap`/`HashSet` in result-path code: iteration order is
    /// randomized per-process, which silently breaks seeded reproducibility.
    UnorderedIteration,
    /// `Instant::now`/`SystemTime::now` reads outside telemetry timing:
    /// wall-clock must never influence experiment results.
    WallClock,
    /// RNG constructed from ambient entropy instead of an explicit seed.
    UnseededRng,
    /// `as <int>` applied to a float expression without an explicit
    /// rounding step: silent truncation must be a deliberate, visible act.
    TruncatingCast,
    /// `.unwrap()`/`.expect(`/`panic!` in library (non-test) code.
    PanicInLibrary,
    /// Cargo.toml dependency that does not resolve inside the repository.
    DependencyHygiene,
    /// A closure handed to a `genet-par` entry point that mutates captured
    /// state or touches interior-mutability types: per-worker effects make
    /// results depend on the schedule.
    ParSharedMutableCapture,
    /// Float accumulation (`+=`, `.sum()`, `.fold(`) over captured data
    /// inside a parallel closure outside `fold_rows_ordered`: float
    /// addition is non-associative, so reduction order must be pinned.
    UnorderedFloatReduction,
    /// Result-path control flow conditioned on the worker count or the
    /// `GENET_THREADS` env var outside the sanctioned shard-shaping
    /// helpers: thread count must stay a pure perf knob.
    ThreadCountBranching,
    /// `std::env::var` in result-path code outside `genet_telemetry::paths`
    /// and the threads parser: ambient environment must not steer results.
    EnvReadInResultPath,
    /// Unstable sorts keyed on floats, or `partial_cmp().unwrap()`
    /// comparators: ties (or NaN) make the order run-dependent.
    NonreproducibleSort,
    /// An `allow` annotation that suppressed nothing (stale escape hatch).
    UnusedAllow,
    /// An `allow` annotation without a written justification.
    MissingJustification,
}

impl RuleId {
    pub const ALL: [RuleId; 11] = [
        RuleId::UnorderedIteration,
        RuleId::WallClock,
        RuleId::UnseededRng,
        RuleId::TruncatingCast,
        RuleId::PanicInLibrary,
        RuleId::DependencyHygiene,
        RuleId::ParSharedMutableCapture,
        RuleId::UnorderedFloatReduction,
        RuleId::ThreadCountBranching,
        RuleId::EnvReadInResultPath,
        RuleId::NonreproducibleSort,
    ];

    pub fn name(self) -> &'static str {
        match self {
            RuleId::UnorderedIteration => "unordered-iteration",
            RuleId::WallClock => "wall-clock-in-result-path",
            RuleId::UnseededRng => "unseeded-rng",
            RuleId::TruncatingCast => "truncating-cast",
            RuleId::PanicInLibrary => "panic-in-library",
            RuleId::DependencyHygiene => "dependency-hygiene",
            RuleId::ParSharedMutableCapture => "par-shared-mutable-capture",
            RuleId::UnorderedFloatReduction => "unordered-float-reduction",
            RuleId::ThreadCountBranching => "thread-count-branching",
            RuleId::EnvReadInResultPath => "env-read-in-result-path",
            RuleId::NonreproducibleSort => "nonreproducible-sort",
            RuleId::UnusedAllow => "unused-allow",
            RuleId::MissingJustification => "missing-justification",
        }
    }

    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }
}

/// What kind of compilation target a source file belongs to; decides which
/// rules apply (e.g. panic hygiene is a library-only rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetKind {
    /// `src/**` of a library crate.
    Lib,
    /// `src/bin/**` or `src/main.rs` — executable code.
    Bin,
    /// `tests/**`, `benches/**`, `examples/**`.
    TestOrBench,
}

/// A single finding, formatted as `file:line:col: [rule] message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    /// 1-based char column of the offending token.
    pub col: usize,
    pub rule: RuleId,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// One rule hit, positioned at a token. The caller (scan.rs) turns these
/// into [`Diagnostic`]s and applies annotation/config suppression.
#[derive(Debug, Clone)]
pub struct Finding {
    pub line: usize,
    pub col: usize,
    pub rule: RuleId,
    pub message: String,
}

/// Functions allowed to read/branch on the worker count: the shard-shaping
/// layer of `genet-par` (DESIGN.md §10).
const SANCTIONED_THREAD_FNS: [&str; 4] = [
    "genet_threads_env",
    "worker_count",
    "configured_threads",
    "override_worker_threads",
];

/// The one function allowed to fold floats across the parallel axis: it
/// replays the serial reduction order exactly (DESIGN.md §11).
const SANCTIONED_FOLD_FN: &str = "fold_rows_ordered";

/// File allowed to read arbitrary env vars (`GENET_BENCH_OUT` relocation).
const SANCTIONED_ENV_FILE_SUFFIX: &str = "genet-telemetry/src/paths.rs";

const INT_TARGETS: [&str; 10] = [
    "usize", "isize", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
];

/// Methods that produce floats — evidence that a cast operand is float-typed.
const FLOAT_METHODS: [&str; 12] = [
    "floor", "ceil", "round", "trunc", "sqrt", "abs", "powi", "powf", "exp", "ln", "log2", "log10",
];

/// Explicit rounding steps that make a float→int `as` cast deliberate.
const ROUNDING_METHODS: [&str; 4] = ["floor", "ceil", "round", "trunc"];

/// Methods transparent to rounding (may follow a rounding step without
/// re-introducing a fraction).
const ROUNDING_TRANSPARENT: [&str; 4] = ["max", "min", "clamp", "abs"];

/// Methods that mutate their receiver in place.
const MUTATING_METHODS: [&str; 16] = [
    "push",
    "push_str",
    "insert",
    "remove",
    "extend",
    "clear",
    "truncate",
    "pop",
    "drain",
    "retain",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "swap",
    "fill",
];

/// Interior-mutability access methods: any of these inside a parallel
/// closure means shared state is in play.
const INTERIOR_MUT_METHODS: [&str; 14] = [
    "lock",
    "borrow_mut",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_update",
    "fetch_max",
    "fetch_min",
    "store",
    "compare_exchange",
    "compare_exchange_weak",
    "get_or_init",
];

/// Interior-mutability markers in declared type text.
const INTERIOR_MUT_TYPES: [&str; 4] = ["Mutex", "RefCell", "Cell", "Atomic"];

/// Par entry points whose closures the capture rules inspect. `spawn` is
/// excluded from `par-shared-mutable-capture` (the engine's own spawn
/// closures legitimately write disjoint `&mut` slots) but included for
/// `unordered-float-reduction`.
const CAPTURE_RULE_ENTRIES: [&str; 3] = ["par_map", "par_map_profiled", "par_map_with"];

/// Scans one file's structural model. Suppression is applied by the caller.
pub fn scan_model(model: &FileModel, kind: TargetKind, file: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    let toks = &model.toks;
    let cond_spans = model.condition_spans();

    for i in 0..toks.len() {
        let t = &toks[i];
        // These two apply everywhere, `#[cfg(test)]` regions and test
        // targets included — unseeded or flaky-ordered tests flake.
        scan_unseeded_rng(model, i, &mut out);
        scan_nonreproducible_sort(model, i, &mut out);
        if model.in_test(i) || kind == TargetKind::TestOrBench {
            continue;
        }

        // unordered-iteration: any appearance in lib/bin code — even a
        // non-iterated HashMap invites a later `for` loop.
        if t.is_ident("HashMap") || t.is_ident("HashSet") {
            push(&mut out, t, RuleId::UnorderedIteration, format!(
                "{} in result-path code: iteration order is unstable; use BTreeMap/BTreeSet or a sorted Vec (or annotate why ordering can never escape)",
                t.text
            ));
        }

        scan_wall_clock(model, i, &mut out);
        scan_truncating_cast(model, i, &mut out);
        if kind == TargetKind::Lib {
            scan_panic(model, i, &mut out);
        }
        scan_thread_count_branching(model, i, &cond_spans, &mut out);
        scan_env_read(model, i, file, &mut out);
        scan_nonreproducible_sort(model, i, &mut out);
    }

    scan_par_closures(model, &mut out);

    out.sort_by_key(|a| (a.line, a.col));
    out
}

fn push(out: &mut Vec<Finding>, t: &Tok, rule: RuleId, message: String) {
    out.push(Finding {
        line: t.line,
        col: t.col,
        rule,
        message,
    });
}

/// unseeded-rng: applies everywhere, `#[cfg(test)]` regions included —
/// unseeded tests flake.
fn scan_unseeded_rng(model: &FileModel, i: usize, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    let t = &toks[i];
    for token in ["thread_rng", "from_entropy", "from_os_rng", "OsRng"] {
        if t.is_ident(token) {
            push(
                out,
                t,
                RuleId::UnseededRng,
                format!("{token}: every RNG must be constructed from an explicit seed"),
            );
        }
    }
    // The `rand::rng()` free function (rand 0.9 spelling of thread_rng).
    if t.is_ident("rng") && i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("rand") {
        push(
            out,
            t,
            RuleId::UnseededRng,
            "rand::rng: every RNG must be constructed from an explicit seed".to_string(),
        );
    }
}

/// Walks back over `Ident ::` pairs to the first segment of the path ending
/// at `i` (an Ident). Returns the start index.
fn path_start(toks: &[Tok], i: usize) -> usize {
    let mut s = i;
    while s >= 2 && toks[s - 1].is_punct("::") && toks[s - 2].kind == TokKind::Ident {
        s -= 2;
    }
    s
}

/// wall-clock-in-result-path: `Instant::now` / `SystemTime::now` reads.
/// Imports and struct fields of type `Instant` are fine (they can't tick);
/// the sanctioned telemetry idiom `timed.then(Instant::now)` — passing the
/// clock as an `Option`-gated constructor — is exempt.
fn scan_wall_clock(model: &FileModel, i: usize, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    if !toks[i].is_ident("now") {
        return;
    }
    if !(i >= 2
        && toks[i - 1].is_punct("::")
        && (toks[i - 2].is_ident("Instant") || toks[i - 2].is_ident("SystemTime")))
    {
        return;
    }
    let clock = &toks[i - 2].text;
    let pstart = path_start(toks, i);
    // Exempt `.then(<path to now>)`: the whole arg group is exactly the path.
    if pstart >= 3
        && toks[pstart - 1].kind == TokKind::Open(Delim::Paren)
        && model.match_of[pstart - 1] == i + 1
        && toks[pstart - 2].is_ident("then")
        && toks[pstart - 3].is_punct(".")
    {
        return;
    }
    push(out, &toks[pstart], RuleId::WallClock, format!(
        "{clock}::now in result-path code: wall-clock reads must stay inside genet-telemetry or annotated timing-only sites"
    ));
}

/// truncating-cast: `<float expr> as <int>`. The operand is the token span
/// scanned back from `as` to the nearest top-level boundary; float-ness is
/// literal/`f32`/`f64`/float-method evidence. Casts whose operand ends in
/// an explicit rounding step (`.round()` etc., optionally followed by
/// `max`/`min`/`clamp`/`abs`) are deliberate and exempt.
fn scan_truncating_cast(model: &FileModel, i: usize, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    if !toks[i].is_ident("as") {
        return;
    }
    let Some(target) = toks.get(i + 1) else {
        return;
    };
    if target.kind != TokKind::Ident || !INT_TARGETS.contains(&target.text.as_str()) {
        return;
    }
    // Operand span: walk left, jumping over groups, stopping at a
    // top-level boundary.
    let mut lo = i;
    while lo > 0 {
        let j = lo - 1;
        match toks[j].kind {
            TokKind::Close(_) => {
                let open = model.match_of[j];
                if open == usize::MAX {
                    break;
                }
                lo = open;
            }
            TokKind::Open(_) => break,
            TokKind::Punct => {
                let p = toks[j].text.as_str();
                let boundary = p.contains('=') || matches!(p, "," | ";" | "&&" | "||" | "=>");
                if boundary {
                    break;
                }
                lo = j;
            }
            TokKind::Ident => {
                if matches!(
                    toks[j].text.as_str(),
                    "return" | "let" | "if" | "else" | "while" | "match" | "in" | "as"
                ) {
                    break;
                }
                lo = j;
            }
            _ => lo = j,
        }
    }
    if lo >= i {
        return;
    }
    let operand = &toks[lo..i];
    let float = operand.iter().enumerate().any(|(k, t)| {
        t.kind == TokKind::NumFloat
            || t.is_ident("f32")
            || t.is_ident("f64")
            || (t.kind == TokKind::Ident
                && FLOAT_METHODS.contains(&t.text.as_str())
                && k > 0
                && operand[k - 1].is_punct("."))
    });
    if !float {
        return;
    }
    // Trailing method chain of the operand, outermost first.
    let mut chain: Vec<&str> = Vec::new();
    let mut end = i; // exclusive
    while end >= lo + 4 {
        let close = end - 1;
        if !matches!(toks[close].kind, TokKind::Close(Delim::Paren)) {
            break;
        }
        let open = model.match_of[close];
        if open == usize::MAX || open < lo + 2 {
            break;
        }
        if toks[open - 1].kind == TokKind::Ident && toks[open - 2].is_punct(".") {
            chain.push(toks[open - 1].text.as_str());
            end = open - 2;
        } else {
            break;
        }
    }
    for (k, m) in chain.iter().enumerate() {
        if ROUNDING_METHODS.contains(m)
            && chain[..k].iter().all(|o| ROUNDING_TRANSPARENT.contains(o))
        {
            return; // explicit rounding: deliberate cast
        }
    }
    push(out, &toks[lo], RuleId::TruncatingCast, format!(
        "float expression cast with `as {}` truncates; make the rounding explicit (.round()/.floor()/.ceil()/.trunc()) or annotate why truncation is the intent",
        target.text
    ));
}

/// panic-in-library: `.unwrap()`, `.expect(`, and the panicking macros.
fn scan_panic(model: &FileModel, i: usize, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return;
    }
    let dotted = i >= 1 && toks[i - 1].is_punct(".");
    let called = matches!(
        toks.get(i + 1).map(|n| n.kind),
        Some(TokKind::Open(Delim::Paren))
    );
    if dotted && called && (t.text == "unwrap" || t.text == "expect") {
        push(
            out,
            t,
            RuleId::PanicInLibrary,
            format!(
                "{}{} in library code: return Result or annotate why this cannot fail",
                t.text,
                if t.text == "unwrap" { "()" } else { "(" }
            ),
        );
        return;
    }
    if toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
        && matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        )
    {
        push(
            out,
            t,
            RuleId::PanicInLibrary,
            format!(
                "{}! in library code: return Result or annotate why this cannot fail",
                t.text
            ),
        );
    }
}

/// thread-count-branching: result-path logic conditioned on the worker
/// count. Hazards are reads of the count helpers (or the literal
/// `GENET_THREADS` env name); they fire when used inside an
/// `if`/`while`/`match` head or compared in a statement, outside the
/// sanctioned shard-shaping helpers.
fn scan_thread_count_branching(
    model: &FileModel,
    i: usize,
    cond_spans: &[(usize, usize)],
    out: &mut Vec<Finding>,
) {
    let toks = &model.toks;
    let t = &toks[i];
    let hazard = match t.kind {
        TokKind::Ident => {
            matches!(
                t.text.as_str(),
                "worker_count" | "configured_threads" | "available_parallelism"
            ) && !(i >= 1 && toks[i - 1].is_ident("fn"))
        }
        // genet-lint: allow(thread-count-branching) the hazard pattern itself must name the env var
        TokKind::Str => t.text.contains("GENET_THREADS"),
        _ => false,
    };
    if !hazard {
        return;
    }
    if let Some(f) = model.enclosing_fn(i) {
        if SANCTIONED_THREAD_FNS.contains(&f.name.as_str()) {
            return;
        }
    }
    let (lo, hi) = model.stmt_range(i);
    // `use genet_par::worker_count;` imports are not reads.
    if toks[lo..=hi].iter().any(|x| x.is_ident("use")) {
        return;
    }
    let in_cond = cond_spans.iter().any(|&(s, e)| s <= i && i < e);
    let compared = t.kind == TokKind::Ident
        && toks[lo..=hi].iter().any(|x| {
            x.kind == TokKind::Punct && matches!(x.text.as_str(), "==" | "!=" | "<=" | ">=")
        });
    // The literal env name outside its parser is always a finding (it means
    // someone is reading or documenting the knob in result code); helper
    // reads only matter when they steer control flow or comparisons.
    let fires = match t.kind {
        TokKind::Str => true,
        _ => in_cond || compared,
    };
    if fires {
        push(out, t, RuleId::ThreadCountBranching, format!(
            "{} steers result-path logic: thread count must stay a pure perf knob (only the genet-par shard-shaping helpers may branch on it)",
            if t.kind == TokKind::Str {
                "the thread-count env var"
            } else {
                t.text.as_str()
            }
        ));
    }
}

/// env-read-in-result-path: `env::var` family reads outside
/// `genet_telemetry::paths` and the threads parser.
fn scan_env_read(model: &FileModel, i: usize, file: &str, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    let t = &toks[i];
    if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "var" | "var_os" | "vars" | "vars_os")
    {
        return;
    }
    if !(i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].is_ident("env")) {
        return;
    }
    if !matches!(
        toks.get(i + 1).map(|n| n.kind),
        Some(TokKind::Open(Delim::Paren))
    ) {
        return;
    }
    if file.ends_with(SANCTIONED_ENV_FILE_SUFFIX) {
        return;
    }
    if let Some(f) = model.enclosing_fn(i) {
        if f.name == "genet_threads_env" {
            return;
        }
    }
    let pstart = path_start(toks, i);
    push(out, &toks[pstart], RuleId::EnvReadInResultPath, format!(
        "env::{} in result-path code: ambient environment must not steer results (only genet_telemetry::paths and the thread-count parser may read env)",
        t.text
    ));
}

/// nonreproducible-sort: applies everywhere, tests included — a flaky
/// comparator in a test is still a flaky test.
fn scan_nonreproducible_sort(model: &FileModel, i: usize, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    let t = &toks[i];
    if t.kind != TokKind::Ident {
        return;
    }
    // (a) `partial_cmp(...)` immediately unwrapped: NaN panics, and the
    // idiom invites `unwrap_or(Equal)` which breaks total order. total_cmp
    // is the deterministic spelling.
    if t.text == "partial_cmp" {
        if let Some(open) = toks.get(i + 1) {
            if open.kind == TokKind::Open(Delim::Paren) {
                let close = model.match_of[i + 1];
                if close != usize::MAX
                    && toks.get(close + 1).is_some_and(|d| d.is_punct("."))
                    && toks
                        .get(close + 2)
                        .is_some_and(|m| m.is_ident("unwrap") || m.is_ident("expect"))
                {
                    push(out, t, RuleId::NonreproducibleSort, "partial_cmp().unwrap() comparator: use total_cmp for a deterministic total order over floats".to_string());
                }
            }
        }
        return;
    }
    // (b) unstable sorts keyed on floats: equal keys land in
    // schedule-dependent order.
    if matches!(t.text.as_str(), "sort_unstable_by" | "sort_unstable_by_key")
        && i >= 1
        && toks[i - 1].is_punct(".")
    {
        if let Some(open) = toks.get(i + 1) {
            if open.kind == TokKind::Open(Delim::Paren) {
                let close = model.match_of[i + 1];
                if close != usize::MAX {
                    let float = toks[i + 2..close].iter().any(|x| {
                        x.kind == TokKind::NumFloat
                            || x.is_ident("f32")
                            || x.is_ident("f64")
                            || x.is_ident("partial_cmp")
                            || x.is_ident("total_cmp")
                    });
                    if float {
                        push(out, t, RuleId::NonreproducibleSort, format!(
                            "{} keyed on floats: equal keys land in arbitrary order; use the stable sort_by/sort_by_key with total_cmp",
                            t.text
                        ));
                    }
                }
            }
        }
    }
}

/// The root identifier of the place-expression ending just before `j`
/// (walks left over `.field`, `[index]` and deref/`&` sigils).
fn place_root(model: &FileModel, j: usize, floor: usize) -> Option<usize> {
    let toks = &model.toks;
    let mut k = j;
    let mut root = None;
    while k > floor {
        k -= 1;
        match toks[k].kind {
            TokKind::Close(Delim::Bracket) => {
                let open = model.match_of[k];
                if open == usize::MAX || open <= floor {
                    break;
                }
                k = open;
            }
            TokKind::Ident => {
                if matches!(toks[k].text.as_str(), "mut" | "let") {
                    break;
                }
                root = Some(k);
            }
            TokKind::Punct if matches!(toks[k].text.as_str(), "." | "*" | "&") => {}
            _ => break,
        }
    }
    root
}

/// The root variable of the method-call chain ending at the `.` token
/// `dot`, found by a forward walk from the statement start `slo`: the
/// chain-start candidate resets at every non-postfix punct and skips
/// argument groups, so identifiers inside nested closures/args never count.
/// Returns `None` when the chain is rooted in a call or a grouped
/// expression (a documented blind spot).
fn receiver_root(model: &FileModel, slo: usize, dot: usize) -> Option<usize> {
    let toks = &model.toks;
    let mut root: Option<usize> = None;
    let mut k = slo;
    while k < dot {
        match toks[k].kind {
            TokKind::Ident => {
                if root.is_none() {
                    root = Some(k);
                }
                k += 1;
            }
            TokKind::Punct if matches!(toks[k].text.as_str(), "." | "::" | "?" | "&" | "*") => {
                k += 1;
            }
            TokKind::Open(_) => {
                let close = model.match_of[k];
                if close == usize::MAX || close > dot {
                    return None;
                }
                if root.is_none() {
                    // Chain starts with a grouped expression: root unknown.
                    root = None;
                }
                k = close + 1;
            }
            _ => {
                root = None;
                k += 1;
            }
        }
    }
    let r = root?;
    // A root immediately followed by `(` is a call, not a variable; keywords
    // and primitive types are never receivers.
    if matches!(
        toks.get(r + 1).map(|n| n.kind),
        Some(TokKind::Open(Delim::Paren))
    ) || matches!(
        toks[r].text.as_str(),
        "let" | "mut" | "f32" | "f64" | "return" | "if" | "else" | "match"
    ) {
        return None;
    }
    Some(r)
}

/// Does the statement around `idx` carry float evidence (literal, f32/f64
/// token, or a root whose declared type is float)?
fn stmt_float_evidence(model: &FileModel, lo: usize, hi: usize) -> bool {
    model.toks[lo..=hi]
        .iter()
        .any(|t| t.kind == TokKind::NumFloat || t.is_ident("f32") || t.is_ident("f64"))
}

fn declared_type_is_float(model: &FileModel, root: usize) -> bool {
    model
        .let_types
        .get(&model.toks[root].text)
        .is_some_and(|ty| ty.contains("f32") || ty.contains("f64"))
}

/// The capture rules: for every closure handed to a `genet-par` entry
/// point, flag mutation of captured state (par-shared-mutable-capture),
/// interior-mutability access, and unordered float accumulation
/// (unordered-float-reduction). Test regions are exempt.
fn scan_par_closures(model: &FileModel, out: &mut Vec<Finding>) {
    let toks = &model.toks;
    for cl in &model.closures {
        let Some(entry) = cl.par_entry else { continue };
        if model.in_test(cl.start) {
            continue;
        }
        let in_sanctioned_fold = model
            .enclosing_fn(cl.start)
            .is_some_and(|f| f.name == SANCTIONED_FOLD_FN);
        let capture_rule_applies = CAPTURE_RULE_ENTRIES.contains(&entry);
        let (blo, bhi) = cl.body;
        // Skip tokens owned by nested *non-par* closure param lists? No —
        // nested closure bodies are still executed on the worker, so their
        // effects count; locals are resolved via is_closure_local.
        let mut j = blo;
        while j <= bhi {
            let t = &toks[j];
            // --- assignments / compound assignments to captured places ---
            if t.kind == TokKind::Punct
                && matches!(t.text.as_str(), "=" | "+=" | "-=" | "*=" | "/=" | "%=")
                && !model.in_macro(j)
            {
                let (slo, shi) = model.stmt_range(j);
                let is_let_binding =
                    t.text == "=" && toks[slo..j].iter().any(|x| x.is_ident("let"));
                if !is_let_binding {
                    if let Some(root) = place_root(model, j, blo.saturating_sub(1)) {
                        let captured =
                            !model.is_closure_local(root) && toks[root].kind == TokKind::Ident;
                        if captured {
                            let float = stmt_float_evidence(model, slo, shi)
                                || declared_type_is_float(model, root);
                            let compound = t.text != "=";
                            if compound && float && !in_sanctioned_fold {
                                push(out, &toks[root], RuleId::UnorderedFloatReduction, format!(
                                    "float `{}` into captured `{}` inside a {} closure: reduction order depends on the schedule; return per-item values and combine with fold_rows_ordered",
                                    t.text, toks[root].text, entry
                                ));
                            } else if capture_rule_applies && !in_sanctioned_fold {
                                push(out, &toks[root], RuleId::ParSharedMutableCapture, format!(
                                    "closure passed to {} mutates captured `{}`: per-worker side effects break thread-count invariance; return the value instead",
                                    entry, toks[root].text
                                ));
                            }
                        }
                    }
                }
            }
            // --- &mut on captured idents ---
            if t.is_punct("&")
                && toks.get(j + 1).is_some_and(|x| x.is_ident("mut"))
                && capture_rule_applies
            {
                if let Some(x) = toks.get(j + 2) {
                    if x.kind == TokKind::Ident
                        && !model.is_closure_local(j + 2)
                        && !model.in_macro(j)
                    {
                        push(out, x, RuleId::ParSharedMutableCapture, format!(
                            "closure passed to {} takes `&mut {}` to captured state: per-worker side effects break thread-count invariance",
                            entry, x.text
                        ));
                    }
                }
            }
            if t.kind == TokKind::Ident {
                let dotted = j >= 1 && toks[j - 1].is_punct(".");
                let called = matches!(
                    toks.get(j + 1).map(|n| n.kind),
                    Some(TokKind::Open(Delim::Paren))
                );
                // --- interior-mutability access ---
                if capture_rule_applies
                    && dotted
                    && called
                    && INTERIOR_MUT_METHODS.contains(&t.text.as_str())
                {
                    push(out, t, RuleId::ParSharedMutableCapture, format!(
                        ".{}() inside a {} closure: interior mutability is shared state; results become schedule-dependent",
                        t.text, entry
                    ));
                }
                // --- mutating methods on captured receivers ---
                if capture_rule_applies
                    && dotted
                    && called
                    && MUTATING_METHODS.contains(&t.text.as_str())
                {
                    if let Some(root) = place_root(model, j - 1, blo.saturating_sub(1)) {
                        if !model.is_closure_local(root) {
                            push(out, &toks[root], RuleId::ParSharedMutableCapture, format!(
                                "closure passed to {} calls `.{}()` on captured `{}`: per-worker mutation breaks thread-count invariance",
                                entry, t.text, toks[root].text
                            ));
                        }
                    }
                }
                // --- captured interior-mutability values by declared type ---
                if capture_rule_applies
                    && !model.is_closure_local(j)
                    && model
                        .let_types
                        .get(&t.text)
                        .is_some_and(|ty| INTERIOR_MUT_TYPES.iter().any(|m| ty.contains(m)))
                {
                    push(out, t, RuleId::ParSharedMutableCapture, format!(
                        "closure passed to {} captures `{}` (interior-mutability type): shared state makes results schedule-dependent",
                        entry, t.text
                    ));
                }
                // --- float .sum()/.product()/.fold( over captured data ---
                // (`called` or turbofish: `.sum::<f64>()`)
                let reduce_called = called || toks.get(j + 1).is_some_and(|n| n.is_punct("::"));
                if !in_sanctioned_fold
                    && dotted
                    && reduce_called
                    && matches!(t.text.as_str(), "sum" | "product" | "fold")
                {
                    let (slo, shi) = model.stmt_range(j);
                    if stmt_float_evidence(model, slo, shi) {
                        // The reduction is a hazard when its receiver chain
                        // is rooted in a captured variable (shared data);
                        // per-item reductions over closure locals are
                        // serial and deterministic.
                        if let Some(root) = receiver_root(model, slo, j - 1) {
                            if !model.is_closure_local(root) {
                                push(out, &toks[root], RuleId::UnorderedFloatReduction, format!(
                                    ".{}() over captured `{}` inside a {} closure: shared floats reduced per-worker; pin the order via fold_rows_ordered",
                                    t.text, toks[root].text, entry
                                ));
                            }
                        }
                    }
                }
            }
            j += 1;
        }
    }
}

//! The brace-matched structural model over the token stream: delimiter
//! matching, `#[cfg(test)]` / `#[test]` region marking, `fn` item and
//! closure extraction (with a locals-vs-captures split per closure), a
//! coarse `let`/param type table, parallel-entry call sites, and the
//! `genet-lint: allow(...)` annotation list.
//!
//! This is the layer that turns "a line mentions X" into "this *expression*,
//! inside this closure, handed to this parallel entry point, does X" — the
//! capability every scope-aware rule is built on. It is still heuristic (no
//! name resolution, no type inference); each rule documents its blind spots
//! in DESIGN.md §13.

use crate::lexer::{lex, Comment, Delim, Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// Parsed `genet-lint: allow(<rule>) <justification>` annotation.
#[derive(Debug, Clone)]
pub struct AllowAnnotation {
    /// Line the annotation comment sits on.
    pub comment_line: usize,
    /// Line the annotation applies to (same line for trailing comments,
    /// next code line for whole-line comments).
    pub target_line: usize,
    pub rule: String,
    pub justification: String,
    /// Set by the scanner when the annotation suppresses a diagnostic.
    pub used: bool,
}

/// One `fn` item: name, signature start, and body token range.
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Index of the `fn` keyword token.
    pub kw: usize,
    /// Body `{`/`}` token indices (`None` for bodyless trait decls).
    pub body: Option<(usize, usize)>,
}

/// One closure expression.
#[derive(Debug, Clone)]
pub struct ClosureItem {
    /// Index of the opening `|` (or `||`) token.
    pub start: usize,
    /// Body token range, inclusive.
    pub body: (usize, usize),
    /// Identifiers bound inside the closure: params, `let` bindings and
    /// `for` patterns (type names in patterns are over-collected, which can
    /// only under-report captures of same-named values — a documented
    /// blind spot).
    pub locals: BTreeSet<String>,
    /// Name of the parallel entry point this closure is an argument of
    /// (`par_map`, `par_map_profiled`, `par_map_with`, `spawn`), if any.
    pub par_entry: Option<&'static str>,
}

/// The full structural model of one source file.
pub struct FileModel {
    pub toks: Vec<Tok>,
    /// For each Open/Close token index, the index of its partner
    /// (`usize::MAX` when unmatched).
    pub match_of: Vec<usize>,
    /// 1-based line → any non-comment token on it.
    pub line_has_code: Vec<bool>,
    /// 1-based line → inside a `#[cfg(test)]` region or `#[test]` item.
    pub test_lines: Vec<bool>,
    pub fns: Vec<FnItem>,
    pub closures: Vec<ClosureItem>,
    /// Coarse `name -> declared type text` table from `let x: T` bindings
    /// and fn params (file-wide, last write wins).
    pub let_types: BTreeMap<String, String>,
    /// Token ranges (open..=close) of macro invocation groups (`foo!(...)`).
    pub macro_ranges: Vec<(usize, usize)>,
    pub annotations: Vec<AllowAnnotation>,
}

/// Parallel entry points whose closure arguments run on worker threads.
pub const PAR_ENTRY_POINTS: [&str; 4] = ["par_map", "par_map_profiled", "par_map_with", "spawn"];

/// Builds the model for one file.
pub fn build(source: &str) -> FileModel {
    let lexed = lex(source);
    let toks = lexed.toks;
    let match_of = match_delims(&toks);

    let nlines = lexed.line_count.max(1);
    let mut line_has_code = vec![false; nlines + 1];
    for t in &toks {
        if t.line <= nlines {
            line_has_code[t.line] = true;
        }
    }

    let test_lines = mark_test_lines(&toks, &match_of, nlines);
    let fns = extract_fns(&toks, &match_of);
    let macro_ranges = extract_macro_ranges(&toks, &match_of);
    let mut closures = extract_closures(&toks, &match_of);
    mark_par_closures(&toks, &match_of, &mut closures);
    let let_types = collect_let_types(&toks, &match_of, &fns);
    let annotations = parse_annotations(&lexed.comments, &line_has_code);

    FileModel {
        toks,
        match_of,
        line_has_code,
        test_lines,
        fns,
        closures,
        let_types,
        macro_ranges,
        annotations,
    }
}

impl FileModel {
    /// Is the token at `idx` inside a test region?
    pub fn in_test(&self, idx: usize) -> bool {
        let line = self.toks[idx].line;
        line < self.test_lines.len() && self.test_lines[line]
    }

    /// Innermost `fn` whose body contains `idx`.
    pub fn enclosing_fn(&self, idx: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(o, c)| o < idx && idx < c))
            .min_by_key(|f| {
                let (o, c) = f.body.unwrap_or((0, usize::MAX));
                c - o
            })
    }

    /// Innermost closure whose body contains `idx`.
    pub fn enclosing_closure(&self, idx: usize) -> Option<&ClosureItem> {
        self.closures
            .iter()
            .filter(|c| c.body.0 <= idx && idx <= c.body.1)
            .min_by_key(|c| c.body.1 - c.body.0)
    }

    /// Is `idx` inside a macro invocation's argument group or an attribute?
    pub fn in_macro(&self, idx: usize) -> bool {
        self.macro_ranges.iter().any(|&(o, c)| o < idx && idx < c)
    }

    /// Is the identifier at `idx` a local of *any* closure whose body
    /// contains it (innermost or an enclosing one)? Used to decide
    /// captured-ness: an ident that is no closure's local is captured from
    /// the enclosing fn.
    pub fn is_closure_local(&self, idx: usize) -> bool {
        let name = &self.toks[idx].text;
        self.closures
            .iter()
            .any(|c| c.body.0 <= idx && idx <= c.body.1 && c.locals.contains(name))
    }

    /// The statement token range containing `idx` (bounded by `;` and
    /// brace edges at the same nesting level), inclusive.
    pub fn stmt_range(&self, idx: usize) -> (usize, usize) {
        let mut lo = idx;
        while lo > 0 {
            let j = lo - 1;
            match self.toks[j].kind {
                // A close brace ends the *previous* statement or block;
                // only paren/bracket groups belong to this statement.
                TokKind::Close(Delim::Brace) => break,
                TokKind::Close(_) => {
                    let open = self.match_of[j];
                    if open == usize::MAX {
                        break;
                    }
                    lo = open;
                }
                TokKind::Open(Delim::Brace) => break,
                TokKind::Punct if self.toks[j].text == ";" => break,
                _ => lo = j,
            }
        }
        let mut hi = idx;
        while hi + 1 < self.toks.len() {
            let j = hi + 1;
            match self.toks[j].kind {
                TokKind::Open(_) => {
                    let close = self.match_of[j];
                    if close == usize::MAX {
                        break;
                    }
                    hi = close;
                }
                TokKind::Close(_) => break,
                TokKind::Punct if self.toks[j].text == ";" => break,
                _ => hi = j,
            }
        }
        (lo, hi)
    }

    /// Spans (exclusive of the brace) of `if`/`while`/`match` heads:
    /// everything between the keyword and its block.
    pub fn condition_spans(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (i, t) in self.toks.iter().enumerate() {
            if !(t.is_ident("if") || t.is_ident("while") || t.is_ident("match")) {
                continue;
            }
            let mut j = i + 1;
            while j < self.toks.len() {
                match self.toks[j].kind {
                    TokKind::Open(Delim::Brace) => {
                        out.push((i, j));
                        break;
                    }
                    TokKind::Open(_) => {
                        let close = self.match_of[j];
                        if close == usize::MAX {
                            break;
                        }
                        j = close + 1;
                    }
                    TokKind::Close(_) => break,
                    TokKind::Punct if self.toks[j].text == ";" => break,
                    _ => j += 1,
                }
            }
        }
        out
    }
}

/// Pairs up delimiter tokens with a stack; unmatched ends get `usize::MAX`.
fn match_delims(toks: &[Tok]) -> Vec<usize> {
    let mut match_of = vec![usize::MAX; toks.len()];
    let mut stack: Vec<(Delim, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Open(d) => stack.push((d, i)),
            TokKind::Close(d) => {
                // Pop until a matching open (tolerates unbalanced input).
                while let Some((od, oi)) = stack.pop() {
                    if od == d {
                        match_of[oi] = i;
                        match_of[i] = oi;
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    match_of
}

/// Marks every line covered by a `#[cfg(test)]` item/region or a `#[test]`
/// function.
fn mark_test_lines(toks: &[Tok], match_of: &[usize], nlines: usize) -> Vec<bool> {
    let mut test = vec![false; nlines + 1];
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_punct("#")
            && matches!(
                toks.get(i + 1).map(|t| t.kind),
                Some(TokKind::Open(Delim::Bracket))
            ))
        {
            i += 1;
            continue;
        }
        let attr_open = i + 1;
        let attr_close = match_of[attr_open];
        if attr_close == usize::MAX {
            i += 1;
            continue;
        }
        let inner = &toks[attr_open + 1..attr_close];
        let is_cfg_test = inner.first().is_some_and(|t| t.is_ident("cfg"))
            && inner.iter().any(|t| t.is_ident("test"))
            && !inner.iter().any(|t| t.is_ident("not"));
        let is_test_attr = inner.len() == 1 && inner[0].is_ident("test");
        if !(is_cfg_test || is_test_attr) {
            i = attr_close + 1;
            continue;
        }
        // Find the attached item's extent: skip further attributes, then
        // run to the first `;` or brace block at this level.
        let mut j = attr_close + 1;
        let mut end_line = toks[attr_close].line;
        while j < toks.len() {
            if toks[j].is_punct("#")
                && matches!(
                    toks.get(j + 1).map(|t| t.kind),
                    Some(TokKind::Open(Delim::Bracket))
                )
            {
                let c = match_of[j + 1];
                if c == usize::MAX {
                    break;
                }
                j = c + 1;
                continue;
            }
            match toks[j].kind {
                TokKind::Open(Delim::Brace) => {
                    let c = match_of[j];
                    if c != usize::MAX {
                        end_line = toks[c].line;
                    }
                    break;
                }
                TokKind::Open(_) => {
                    let c = match_of[j];
                    if c == usize::MAX {
                        break;
                    }
                    j = c + 1;
                }
                TokKind::Close(_) => break,
                TokKind::Punct if toks[j].text == ";" => {
                    end_line = toks[j].line;
                    break;
                }
                _ => j += 1,
            }
        }
        for line in toks[i].line..=end_line.min(nlines) {
            test[line] = true;
        }
        i = attr_close + 1;
    }
    test
}

/// Extracts `fn` items (name + body range). `fn` in function-pointer types
/// (`fn(usize) -> T`) is skipped because no name ident follows.
fn extract_fns(toks: &[Tok], match_of: &[usize]) -> Vec<FnItem> {
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("fn") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        let name = name_tok.text.clone();
        // Scan for the body `{`, jumping over groups (params, where-clause
        // bounds); a `;` first means a bodyless declaration.
        let mut j = i + 2;
        let mut body = None;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Open(Delim::Brace) => {
                    let c = match_of[j];
                    if c != usize::MAX {
                        body = Some((j, c));
                    }
                    break;
                }
                TokKind::Open(_) => {
                    let c = match_of[j];
                    if c == usize::MAX {
                        break;
                    }
                    j = c + 1;
                }
                TokKind::Close(_) => break,
                TokKind::Punct if toks[j].text == ";" => break,
                _ => j += 1,
            }
        }
        out.push(FnItem { name, kw: i, body });
    }
    out
}

/// Token ranges of macro invocation argument groups (`name!(…)`, `name![…]`,
/// `name!{…}`) and attribute groups (`#[…]`). Both can contain `=` that is
/// not an assignment (named macro args, `cfg(feature = "x")`), so mutation
/// detection treats them as opaque.
fn extract_macro_ranges(toks: &[Tok], match_of: &[usize]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            && matches!(toks.get(i + 2).map(|t| t.kind), Some(TokKind::Open(_)))
        {
            let c = match_of[i + 2];
            if c != usize::MAX {
                out.push((i + 2, c));
            }
        }
        if toks[i].is_punct("#")
            && matches!(
                toks.get(i + 1).map(|t| t.kind),
                Some(TokKind::Open(Delim::Bracket))
            )
        {
            let c = match_of[i + 1];
            if c != usize::MAX {
                out.push((i + 1, c));
            }
        }
    }
    out
}

/// True when the token before `i` puts a `|` in closure (not bit-or)
/// position.
fn closure_position(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let p = &toks[i - 1];
    match p.kind {
        TokKind::Open(_) => true,
        TokKind::Punct => matches!(p.text.as_str(), "," | "=" | "=>" | ":" | ";" | "->"),
        TokKind::Ident => matches!(p.text.as_str(), "move" | "return" | "else" | "in"),
        _ => false,
    }
}

/// Extracts closures: `|params| body` and `|| body`.
fn extract_closures(toks: &[Tok], match_of: &[usize]) -> Vec<ClosureItem> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Punct || !(t.text == "|" || t.text == "||") {
            continue;
        }
        if !closure_position(toks, i) {
            continue;
        }
        let mut locals = BTreeSet::new();
        let body_first = if t.text == "||" {
            i + 1
        } else {
            // Find the closing `|` at this level; param idents become locals.
            let mut j = i + 1;
            let mut close = None;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Punct if toks[j].text == "|" => {
                        close = Some(j);
                        break;
                    }
                    TokKind::Punct if toks[j].text == ";" => break,
                    TokKind::Open(_) => {
                        let c = match_of[j];
                        if c == usize::MAX {
                            break;
                        }
                        for k in j..=c {
                            if toks[k].kind == TokKind::Ident {
                                locals.insert(toks[k].text.clone());
                            }
                        }
                        j = c + 1;
                    }
                    TokKind::Close(_) => break,
                    TokKind::Ident => {
                        locals.insert(toks[j].text.clone());
                        j += 1;
                    }
                    _ => j += 1,
                }
            }
            match close {
                Some(c) => c + 1,
                None => continue, // not a closure after all
            }
        };
        if body_first >= toks.len() {
            continue;
        }
        // Body extent: a brace group, or the expression up to a `,`/`;`/
        // closing delimiter at this level.
        let body = if toks[body_first].kind == TokKind::Open(Delim::Brace) {
            let c = match_of[body_first];
            if c == usize::MAX {
                continue;
            }
            (body_first, c)
        } else {
            let mut j = body_first;
            let mut last = body_first;
            while j < toks.len() {
                match toks[j].kind {
                    TokKind::Open(_) => {
                        let c = match_of[j];
                        if c == usize::MAX {
                            break;
                        }
                        last = c;
                        j = c + 1;
                    }
                    TokKind::Close(_) => break,
                    TokKind::Punct if toks[j].text == "," || toks[j].text == ";" => break,
                    _ => {
                        last = j;
                        j += 1;
                    }
                }
            }
            (body_first, last)
        };
        // `let` bindings and `for` patterns inside the body are locals too.
        let mut j = body.0;
        while j <= body.1 {
            if toks[j].is_ident("let") {
                let mut k = j + 1;
                while k <= body.1 {
                    match toks[k].kind {
                        TokKind::Ident => {
                            locals.insert(toks[k].text.clone());
                            k += 1;
                        }
                        TokKind::Punct if toks[k].text == "=" || toks[k].text == ";" => break,
                        TokKind::Open(_) => {
                            let c = match_of[k];
                            if c == usize::MAX || c > body.1 {
                                break;
                            }
                            for m in k..=c {
                                if toks[m].kind == TokKind::Ident {
                                    locals.insert(toks[m].text.clone());
                                }
                            }
                            k = c + 1;
                        }
                        _ => k += 1,
                    }
                }
            } else if toks[j].is_ident("for") {
                let mut k = j + 1;
                while k <= body.1 && !toks[k].is_ident("in") {
                    if toks[k].kind == TokKind::Ident {
                        locals.insert(toks[k].text.clone());
                    }
                    k += 1;
                }
            }
            j += 1;
        }
        out.push(ClosureItem {
            start: i,
            body,
            locals,
            par_entry: None,
        });
    }
    out
}

/// Tags closures that sit (anywhere) inside the argument list of a
/// parallel entry-point call.
fn mark_par_closures(toks: &[Tok], match_of: &[usize], closures: &mut [ClosureItem]) {
    for i in 0..toks.len() {
        let Some(entry) = PAR_ENTRY_POINTS
            .iter()
            .find(|e| toks[i].is_ident(e))
            .copied()
        else {
            continue;
        };
        if !matches!(
            toks.get(i + 1).map(|t| t.kind),
            Some(TokKind::Open(Delim::Paren))
        ) {
            continue;
        }
        // Skip the *definition* (`fn par_map(` …).
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        let close = match_of[i + 1];
        if close == usize::MAX {
            continue;
        }
        for cl in closures.iter_mut() {
            if cl.start > i + 1 && cl.start < close {
                cl.par_entry = Some(entry);
            }
        }
    }
}

/// Collects `let name: Type = …` bindings and typed fn params into a
/// file-wide `name -> type text` table.
fn collect_let_types(toks: &[Tok], match_of: &[usize], fns: &[FnItem]) -> BTreeMap<String, String> {
    let mut out = BTreeMap::new();
    // let bindings
    for i in 0..toks.len() {
        if !toks[i].is_ident("let") {
            continue;
        }
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_ident("mut")) {
            j += 1;
        }
        let Some(name_tok) = toks.get(j) else {
            continue;
        };
        if name_tok.kind != TokKind::Ident {
            continue;
        }
        if !toks.get(j + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        let mut ty = String::new();
        let mut k = j + 2;
        while k < toks.len() {
            match toks[k].kind {
                TokKind::Punct if toks[k].text == "=" || toks[k].text == ";" => break,
                TokKind::Open(_) => {
                    let c = match_of[k];
                    if c == usize::MAX {
                        break;
                    }
                    for m in k..=c {
                        ty.push_str(&toks[m].text);
                        ty.push(' ');
                    }
                    k = c + 1;
                }
                TokKind::Close(_) => break,
                _ => {
                    ty.push_str(&toks[k].text);
                    ty.push(' ');
                    k += 1;
                }
            }
        }
        out.insert(name_tok.text.clone(), ty);
    }
    // fn params: name `: Type` segments of the signature's paren group
    for f in fns {
        let mut open = None;
        let limit = f.body.map_or(toks.len(), |(o, _)| o);
        for j in f.kw + 1..limit {
            if toks[j].kind == TokKind::Open(Delim::Paren) {
                open = Some(j);
                break;
            }
        }
        let Some(o) = open else { continue };
        let c = match_of[o];
        if c == usize::MAX {
            continue;
        }
        let mut j = o + 1;
        while j < c {
            // Segment start: ident `:` type-tokens (to the `,` at depth 0).
            if toks[j].kind == TokKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct(":")) {
                let name = toks[j].text.clone();
                let mut ty = String::new();
                let mut k = j + 2;
                while k < c {
                    match toks[k].kind {
                        TokKind::Punct if toks[k].text == "," => break,
                        TokKind::Open(_) => {
                            let cc = match_of[k];
                            if cc == usize::MAX || cc > c {
                                break;
                            }
                            for m in k..=cc {
                                ty.push_str(&toks[m].text);
                                ty.push(' ');
                            }
                            k = cc + 1;
                        }
                        _ => {
                            ty.push_str(&toks[k].text);
                            ty.push(' ');
                            k += 1;
                        }
                    }
                }
                out.insert(name, ty);
                j = k + 1;
            } else {
                j += 1;
            }
        }
    }
    out
}

/// Extracts `genet-lint: allow(rule) justification` annotations and computes
/// the code line each one targets.
fn parse_annotations(comments: &[Comment], line_has_code: &[bool]) -> Vec<AllowAnnotation> {
    let mut out = Vec::new();
    for c in comments {
        if c.doc {
            continue;
        }
        let Some(pos) = c.text.find("genet-lint:") else {
            continue;
        };
        let rest = c.text[pos + "genet-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let justification = rest[close + 1..].trim().to_string();
        let target_line = if line_has_code.get(c.line).copied().unwrap_or(false) {
            c.line
        } else {
            (c.line + 1..line_has_code.len())
                .find(|&l| line_has_code[l])
                .unwrap_or(c.line)
        };
        out.push(AllowAnnotation {
            comment_line: c.line,
            target_line,
            rule,
            justification,
            used: false,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_region_is_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.len(); }\n}\nfn after() {}\n";
        let m = build(src);
        assert!(!m.test_lines[1]);
        assert!(m.test_lines[2] && m.test_lines[3] && m.test_lines[4] && m.test_lines[5]);
        assert!(!m.test_lines[6]);
    }

    #[test]
    fn test_attr_fn_is_marked() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n";
        let m = build(src);
        assert!(m.test_lines[1] && m.test_lines[2] && m.test_lines[3] && m.test_lines[4]);
        assert!(!m.test_lines[5]);
    }

    #[test]
    fn out_of_line_test_mod() {
        let src = "#[cfg(test)] mod t;\nfn lib() {}\n";
        let m = build(src);
        assert!(m.test_lines[1]);
        assert!(!m.test_lines[2]);
    }

    #[test]
    fn fns_and_bodies_extracted() {
        let src = "fn a(x: usize) -> usize { x + 1 }\nfn decl();\nfn b<T: Fn(usize) -> usize>(f: T) { f(1); }\n";
        let m = build(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "decl", "b"]);
        assert!(m.fns[0].body.is_some());
        assert!(m.fns[1].body.is_none());
        assert!(m.fns[2].body.is_some());
    }

    #[test]
    fn closures_extracted_with_locals() {
        let src = "fn f() { g(3, |i| { let s = i * 2; s }); let c = || 1; }\n";
        let m = build(src);
        assert_eq!(m.closures.len(), 2);
        assert!(m.closures[0].locals.contains("i"));
        assert!(m.closures[0].locals.contains("s"));
    }

    #[test]
    fn bitor_is_not_a_closure() {
        let src = "fn f(a: u8, b: u8) -> u8 { a | b }\n";
        let m = build(src);
        assert!(m.closures.is_empty());
    }

    #[test]
    fn par_entry_marks_closures() {
        let src = "fn f() { par_map(10, |i| i * 2); other(|j| j); }\n";
        let m = build(src);
        assert_eq!(m.closures.len(), 2);
        assert_eq!(m.closures[0].par_entry, Some("par_map"));
        assert_eq!(m.closures[1].par_entry, None);
    }

    #[test]
    fn let_types_collected() {
        let src =
            "fn f(m: &Mutex<Vec<u32>>) { let c: RefCell<u8> = RefCell::new(0); let x = 1; }\n";
        let m = build(src);
        assert!(m.let_types.get("m").is_some_and(|t| t.contains("Mutex")));
        assert!(m.let_types.get("c").is_some_and(|t| t.contains("RefCell")));
        assert!(!m.let_types.contains_key("x"));
    }

    #[test]
    fn annotations_trailing_and_preceding() {
        let src = "fn f() { m.len(); } // genet-lint: allow(panic-in-library) startup only\n// genet-lint: allow(unordered-iteration) order never escapes\nfn g() {}\n";
        let m = build(src);
        assert_eq!(m.annotations.len(), 2);
        assert_eq!(m.annotations[0].target_line, 1);
        assert_eq!(m.annotations[0].rule, "panic-in-library");
        assert!(m.annotations[0].justification.contains("startup"));
        assert_eq!(m.annotations[1].target_line, 3);
    }

    #[test]
    fn doc_comments_never_carry_annotations() {
        let src = "/// Write `// genet-lint: allow(some-rule) why` above the line.\n//! Docs may mention genet-lint: allow(other-rule) too.\nfn f() {}\n";
        let m = build(src);
        assert!(m.annotations.is_empty(), "{:?}", m.annotations);
    }

    #[test]
    fn condition_spans_cover_if_heads() {
        let src = "fn f(n: usize) { if n > compute(n) { g(); } }\n";
        let m = build(src);
        let spans = m.condition_spans();
        assert_eq!(spans.len(), 1);
        let (lo, hi) = spans[0];
        let texts: Vec<&str> = m.toks[lo..hi].iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"compute"));
    }

    #[test]
    fn stmt_range_stops_at_semicolons() {
        let src = "fn f() { let a = 1; let b = g(a) <= 1; h(b); }\n";
        let m = build(src);
        let g_idx = m.toks.iter().position(|t| t.is_ident("g")).unwrap();
        let (lo, hi) = m.stmt_range(g_idx);
        let texts: Vec<&str> = m.toks[lo..=hi].iter().map(|t| t.text.as_str()).collect();
        assert!(texts.contains(&"<="));
        assert!(!texts.contains(&"a") || texts.iter().filter(|t| **t == "let").count() == 1);
        assert!(!texts.contains(&"h"));
    }
}

//! The analyzer must hold itself (and the perf tooling that shares its
//! diagnostics style) to its own rules: both crates lint clean with the
//! real workspace config, annotations included. A regression here means a
//! new rule fired on its own implementation — fix the code or justify an
//! allow, never weaken the rule.

use genet_lint::{find_workspace_root, lint_crate};
use std::path::Path;

fn assert_crate_clean(name: &str) {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root");
    let diags = lint_crate(&root, name).expect("lint run");
    assert!(
        diags.is_empty(),
        "{name} fails its own analyzer:\n{}",
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn genet_lint_passes_its_own_analyzer() {
    assert_crate_clean("genet-lint");
}

#[test]
fn genet_perf_passes_the_analyzer() {
    assert_crate_clean("genet-perf");
}

// Fixture: unseeded-rng positives, negatives, and allow cases.

pub fn positive() {
    let _rng = rand::rng(); // POSITIVE line 4
}

pub fn positive_thread_rng() {
    let _rng = rand::thread_rng(); // POSITIVE line 8
}

pub fn negative() {
    use rand::SeedableRng;
    let _rng = rand::rngs::StdRng::seed_from_u64(42);
}

pub fn allowed() {
    // genet-lint: allow(unseeded-rng) interactive demo binary; reproducibility not required here
    let _rng = rand::rng();
}

#[cfg(test)]
mod tests {
    #[test]
    fn unseeded_flagged_even_here() {
        let _rng = rand::rng(); // POSITIVE line 25 — tests must be seeded too
    }
}

// Fixture: par-shared-mutable-capture positives, negatives, allow cases.
use std::sync::Mutex;

pub fn positive_mutation(n: usize) -> usize {
    let mut total = 0usize;
    genet_par::par_map(n, |i| {
        total += i; // POSITIVE line 7 — captured accumulator
        i
    });
    total
}

pub fn positive_interior(n: usize, log: &Mutex<Vec<usize>>) {
    genet_par::par_map(n, |i| {
        if let Ok(mut v) = log.lock() { // POSITIVE line 15 — interior mutability
            v.push(i);
        }
        i
    });
}

pub fn positive_mut_borrow(n: usize, acc: &mut [usize]) {
    genet_par::par_map_profiled(n, |i| {
        bump(&mut acc[i]); // POSITIVE line 24 — &mut into captured state
        i
    });
}

pub fn positive_push(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    genet_par::par_map(n, |i| {
        out.push(i); // POSITIVE line 32 — mutating method on captured receiver
        i
    });
    out
}

pub fn positive_captured_cell(n: usize) -> usize {
    let counter: std::cell::RefCell<usize> = std::cell::RefCell::new(0);
    genet_par::par_map(n, |i| {
        let c = &counter; // POSITIVE line 41 — RefCell capture by declared type
        c.borrow().checked_add(i).unwrap_or(0)
    });
    0
}

pub fn negative_local_state(n: usize, weights: &[u64]) -> Vec<u64> {
    genet_par::par_map(n, |i| {
        let mut local = 0u64;
        local += weights[i]; // per-item local accumulation: serial and fine
        local
    })
}

pub fn negative_spawn_engine(slots: &mut [usize]) {
    // `spawn` closures are the engine's internals (disjoint &mut slots);
    // the capture rule polices the public par_map* API only.
    scope(|s| {
        s.spawn(|_| {
            slots[0] = 1;
        });
    });
}

pub fn allowed(n: usize) -> Vec<usize> {
    let mut hits = vec![0usize; n];
    genet_par::par_map(n, |i| {
        // genet-lint: allow(par-shared-mutable-capture) slots are disjoint per index; proven by thread_invariance
        hits[i] += 1;
        i
    });
    hits
}

#[cfg(test)]
mod tests {
    pub fn capture_ok_in_tests(n: usize) {
        let mut total = 0usize;
        genet_par::par_map(n, |i| {
            total += i;
            i
        });
    }
}

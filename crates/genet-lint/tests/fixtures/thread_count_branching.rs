// Fixture: thread-count-branching positives, negatives, allow cases.
use genet_par::par_map; // imports are not reads

pub fn positive_if(n: usize) -> usize {
    if genet_par::worker_count(n) <= 1 { // POSITIVE line 5 — result path forks on the count
        serial(n)
    } else {
        parallel(n)
    }
}

pub fn positive_compare(len: usize) -> bool {
    let single = genet_par::worker_count(len) == 1; // POSITIVE line 13
    single
}

pub fn positive_env_name() -> &'static str {
    "GENET_THREADS" // POSITIVE line 18 — the knob's name in result code
}

pub fn negative_shaping(items: usize) -> usize {
    // Reading the count to size shards is fine; only branching/compares fire.
    let w = genet_par::worker_count(items);
    items / w.max(1)
}

pub fn genet_threads_env() -> Option<usize> {
    // The sanctioned parser: may read and branch on the env knob.
    match std::env::var("GENET_THREADS") {
        Ok(v) => v.parse().ok(),
        Err(_) => None,
    }
}

pub fn allowed(shards: usize) -> bool {
    // genet-lint: allow(thread-count-branching) serial fast path is bit-identical by construction
    genet_par::worker_count(shards) <= 1
}

#[cfg(test)]
mod tests {
    pub fn branching_ok_in_tests(n: usize) -> bool {
        genet_par::worker_count(n) == 1
    }
}

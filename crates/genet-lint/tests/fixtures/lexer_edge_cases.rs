// Fixture: lexer edge cases the v1 line cleaner mishandled — raw strings,
// char literals that look like delimiters/quotes, nested block comments.
// Exactly one wall-clock finding (the marked line) must survive.

pub fn raw_strings() -> usize {
    // Quotes and comment markers inside raw strings are literal text.
    let s = r#"contains "quotes" and // no comment and Instant::now("#;
    let t = r##"nested "# hash fence stays inside"##;
    let b = br"byte raw";
    s.len() + t.len() + b.len()
}

pub fn char_literals(c: char) -> u32 {
    let open = '{'; // a brace char must not unbalance the token tree
    let quote = '"'; // a quote char must not open a string
    let escaped = '\'';
    let uni = '\u{1F600}';
    match c {
        '}' => 1,
        _ if c == open || c == quote || c == escaped || c == uni => 2,
        _ => 0,
    }
}

/* outer /* nested block comment: Instant::now() stays commented */ still out */
pub fn after_comments() -> f64 {
    let t0 = std::time::Instant::now(); // POSITIVE line 27 — scanning resumed correctly
    t0.elapsed().as_secs_f64()
}

pub fn lifetimes<'a>(x: &'a str) -> &'a str {
    x // lifetime ticks must not be parsed as char literals
}

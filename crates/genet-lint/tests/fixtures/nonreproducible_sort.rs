// Fixture: nonreproducible-sort positives, negatives, allow cases.
// Linted as Bin (the rule applies to every target kind; Bin keeps the
// panic-in-library rule out of the `.unwrap()` comparators).

pub fn positive_partial_cmp(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // POSITIVE line 6 — NaN panics; use total_cmp
}

pub fn positive_partial_cmp_expect(xs: &mut [f64]) {
    let _ = xs
        .iter()
        .max_by(|a, b| a.partial_cmp(b).expect("no NaN")); // POSITIVE line 12
}

pub fn positive_unstable_float(pairs: &mut [(f64, usize)]) {
    pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0)); // POSITIVE line 16 — ties land in arbitrary order
}

pub fn positive_unstable_by_key(xs: &mut [f32]) {
    xs.sort_unstable_by_key(|x: &f32| x.to_bits()); // POSITIVE line 20
}

pub fn negative_stable_total(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b)); // stable + total order: deterministic
}

pub fn negative_unstable_ints(xs: &mut [u64]) {
    xs.sort_unstable(); // ints are Ord; unstable is fine
}

pub fn allowed(xs: &mut [(f64, usize)]) {
    // genet-lint: allow(nonreproducible-sort) keys are unique by construction (index appended)
    xs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
}

#[cfg(test)]
mod tests {
    pub fn positive_in_tests(xs: &mut [f64]) {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // POSITIVE line 39 — flaky comparators flagged in tests too
    }
}

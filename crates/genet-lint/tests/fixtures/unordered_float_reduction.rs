// Fixture: unordered-float-reduction positives, negatives, allow cases.

pub fn positive_compound(n: usize) -> f64 {
    let mut total = 0.0f64;
    genet_par::par_map(n, |i| {
        total += i as f64; // POSITIVE line 6 — float accumulation across items
        i
    });
    total
}

pub fn positive_spawn(xs: &[f64], out: &mut f64) {
    scope(|s| {
        s.spawn(|_| {
            for x in xs {
                *out += *x; // POSITIVE line 16 — captured f64 accumulation in a spawn closure
            }
        });
    });
}

pub fn positive_sum(rows: &[f64], n: usize) -> Vec<f64> {
    genet_par::par_map(n, |_i| {
        let s: f64 = rows.iter().sum(); // POSITIVE line 24 — reduction over captured floats
        s
    })
}

pub fn negative_local_sum(n: usize) -> Vec<f64> {
    genet_par::par_map(n, |i| {
        let xs = vec![i as f64; 4];
        let s: f64 = xs.iter().sum(); // per-item serial reduction over a local
        s
    })
}

pub fn fold_rows_ordered(out: &mut [f64], row: &[f64]) {
    // The sanctioned fold: replays the serial reduction order exactly.
    scope(|s| {
        s.spawn(|_| {
            out[0] += row[0] * 1.0;
        });
    });
}

pub fn allowed(n: usize) -> f32 {
    let mut acc = 0.0f32;
    genet_par::par_map(n, |i| {
        // genet-lint: allow(unordered-float-reduction) demo accumulator; value never reaches results
        acc += i as f32;
        i
    });
    acc
}

#[cfg(test)]
mod tests {
    pub fn reduction_ok_in_tests(n: usize) {
        let mut acc = 0.0f32;
        genet_par::par_map(n, |i| {
            acc += i as f32;
            i
        });
    }
}

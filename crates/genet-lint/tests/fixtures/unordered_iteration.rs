// Fixture: unordered-iteration positives, negatives, and allow cases.
use std::collections::HashMap; // POSITIVE line 2
use std::collections::BTreeMap; // negative: ordered container

pub fn positive() {
    let mut m: HashMap<u32, u32> = HashMap::new(); // POSITIVE line 6
    m.insert(1, 2);
}

pub fn negative() {
    let mut m: BTreeMap<u32, u32> = BTreeMap::new();
    m.insert(1, 2);
    let _doc = "HashMap in a string literal is not code";
}

pub fn allowed() {
    // genet-lint: allow(unordered-iteration) membership-only set; iteration order never escapes
    let mut s = std::collections::HashSet::new();
    s.insert(1);
}

#[cfg(test)]
mod tests {
    #[test]
    fn hash_ok_in_tests() {
        let _m: std::collections::HashMap<u8, u8> = std::collections::HashMap::new();
    }
}

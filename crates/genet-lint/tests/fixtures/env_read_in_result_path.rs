// Fixture: env-read-in-result-path positives, negatives, allow cases.

pub fn positive() -> Option<String> {
    std::env::var("SOME_KNOB").ok() // POSITIVE line 4
}

pub fn positive_var_os() -> Option<std::ffi::OsString> {
    std::env::var_os("OTHER_KNOB") // POSITIVE line 8
}

pub fn genet_threads_env() -> Option<usize> {
    // The sanctioned GENET_THREADS parser may read the environment.
    std::env::var("GENET_THREADS").ok().and_then(|v| v.parse().ok())
}

pub fn negative_args() -> Vec<String> {
    std::env::args().collect() // args() is CLI parsing, not an env read
}

pub fn allowed() -> Option<String> {
    // genet-lint: allow(env-read-in-result-path) observation-only metadata recorded beside results
    std::env::var("GIT_SHA").ok()
}

#[cfg(test)]
mod tests {
    pub fn env_ok_in_tests() -> Option<String> {
        std::env::var("TEST_KNOB").ok()
    }
}

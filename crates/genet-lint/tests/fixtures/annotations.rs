// Fixture: annotation edge cases — stale allows, missing justifications,
// unknown rules.

pub fn stale() -> u32 {
    // genet-lint: allow(panic-in-library) nothing on the next line panics
    1 + 1
}

pub fn missing_justification(x: Option<u32>) -> u32 {
    // genet-lint: allow(panic-in-library)
    x.unwrap()
}

pub fn unknown_rule(x: Option<u32>) -> u32 {
    // genet-lint: allow(no-such-rule) some words
    x.unwrap()
}

// Fixture: panic-in-library positives, negatives, and allow cases.

pub fn positive(x: Option<u32>) -> u32 {
    x.unwrap() // POSITIVE line 4
}

pub fn positive_expect(x: Option<u32>) -> u32 {
    x.expect("value must exist") // POSITIVE line 8
}

pub fn positive_macro(flag: bool) {
    if flag {
        panic!("boom"); // POSITIVE line 13
    }
}

pub fn negative(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 1)
}

pub fn allowed(xs: &[u32]) -> u32 {
    // genet-lint: allow(panic-in-library) xs is non-empty by construction (asserted by every caller)
    *xs.last().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_ok_in_tests() {
        Some(1u32).unwrap();
    }
}

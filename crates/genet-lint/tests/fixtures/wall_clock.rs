// Fixture: wall-clock-in-result-path positives, negatives, and allow cases.
use std::time::Instant; // negative under v2: imports cannot tick

pub struct Profiler {
    pub started: Instant, // negative: a stored Instant is data, not a read
}

pub fn positive() -> f64 {
    let t0 = Instant::now(); // POSITIVE line 9
    t0.elapsed().as_secs_f64()
}

pub fn positive_systemtime() {
    let _ = std::time::SystemTime::now(); // POSITIVE line 14
}

pub fn negative_gated(timed: bool) -> Option<Instant> {
    // The sanctioned telemetry idiom: the clock read is gated behind the
    // profiling flag, passed as a constructor to `.then`.
    timed.then(Instant::now)
}

pub fn negative() -> u64 {
    // A Duration value is fine; only clock *reads* are flagged.
    std::time::Duration::from_secs(1).as_secs()
}

pub fn allowed() {
    // genet-lint: allow(wall-clock-in-result-path) progress logging only; never feeds results
    let _ = std::time::Instant::now();
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_ok_in_tests() {
        let _ = std::time::Instant::now();
    }
}

// Fixture: truncating-cast positives, negatives, and allow cases.

pub fn positive(x_s: f64) -> usize {
    (x_s / 0.5) as usize // POSITIVE line 4
}

pub fn positive_sqrt(r: f64) -> u64 {
    r.sqrt() as u64 // POSITIVE line 8 — float method, no rounding step
}

pub fn positive_rounding_buried(x: f64) -> usize {
    (x.round() * 2.0) as usize // POSITIVE line 12 — the *2.0 reintroduces a fraction
}

pub fn negative_rounded(r: f64) -> i64 {
    r.round() as i64 // explicit rounding: the truncation is deliberate
}

pub fn negative_floor_clamped(v: f64, hi: f64) -> usize {
    v.floor().max(0.0).min(hi) as usize // max/min are rounding-transparent
}

pub fn negative(items: &[u8]) -> u64 {
    items.len() as u64 // integer-to-integer: not flagged
}

pub fn negative_elapsed(nanos: u128) -> u64 {
    nanos as u64
}

pub fn allowed(buffer_s: f64) -> i64 {
    // genet-lint: allow(truncating-cast) truncation IS the bucketing: floor to the 0.25s bin
    (buffer_s / 0.25) as i64
}

#[cfg(test)]
mod tests {
    #[test]
    fn cast_ok_in_tests() {
        let _ = (1.5f64 * 2.0) as usize;
    }
}

// Fixture: truncating-cast positives, negatives, and allow cases.

pub fn positive(x_s: f64) -> usize {
    (x_s / 0.5) as usize // POSITIVE line 4
}

pub fn positive_method(r: f64) -> i64 {
    (r.floor()) as i64 // POSITIVE line 8 — explicit floor still needs a justification
}

pub fn negative(items: &[u8]) -> u64 {
    items.len() as u64 // integer-to-integer: not flagged
}

pub fn negative_elapsed(nanos: u128) -> u64 {
    nanos as u64
}

pub fn allowed(rank: f64) -> usize {
    // genet-lint: allow(truncating-cast) rank is a non-negative in-range index by construction
    rank.floor() as usize
}

#[cfg(test)]
mod tests {
    #[test]
    fn cast_ok_in_tests() {
        let _ = (1.5f64 * 2.0) as usize;
    }
}

//! Fixture-driven tests: each file under `tests/fixtures/` exercises one
//! rule with positive, negative, and `allow`-annotated cases. Lines that
//! must be flagged carry a `// POSITIVE line N` marker; the driver derives
//! the expected line set from those markers so fixture and expectation
//! cannot drift apart.

use genet_lint::{lint_source, LintConfig, RuleId, TargetKind};
use std::path::PathBuf;

const UNORDERED: &str = include_str!("fixtures/unordered_iteration.rs");
const WALL_CLOCK: &str = include_str!("fixtures/wall_clock.rs");
const UNSEEDED: &str = include_str!("fixtures/unseeded_rng.rs");
const TRUNCATING: &str = include_str!("fixtures/truncating_cast.rs");
const PANIC: &str = include_str!("fixtures/panic_in_library.rs");
const ANNOTATIONS: &str = include_str!("fixtures/annotations.rs");
const PAR_CAPTURE: &str = include_str!("fixtures/par_shared_mutable_capture.rs");
const FLOAT_REDUCTION: &str = include_str!("fixtures/unordered_float_reduction.rs");
const THREAD_BRANCH: &str = include_str!("fixtures/thread_count_branching.rs");
const ENV_READ: &str = include_str!("fixtures/env_read_in_result_path.rs");
const SORT: &str = include_str!("fixtures/nonreproducible_sort.rs");
const LEXER_EDGE: &str = include_str!("fixtures/lexer_edge_cases.rs");

/// Lines carrying a `POSITIVE line N` marker; panics if a marker's stated
/// number disagrees with its actual position (stale fixture).
fn positive_lines(src: &str) -> Vec<usize> {
    let mut out = Vec::new();
    for (idx, line) in src.lines().enumerate() {
        let Some(rest) = line.split("POSITIVE line").nth(1) else {
            continue;
        };
        let stated: usize = rest
            .trim_start()
            .split(|c: char| !c.is_ascii_digit())
            .next()
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparseable POSITIVE marker on line {}", idx + 1));
        assert_eq!(
            stated,
            idx + 1,
            "stale POSITIVE marker: says {stated}, is on {}",
            idx + 1
        );
        out.push(idx + 1);
    }
    assert!(!out.is_empty(), "fixture has no POSITIVE markers");
    out
}

/// Lints a fixture with no per-crate config and checks the flagged lines
/// against the markers: exactly the marked lines, exactly the expected
/// rule, no annotation complaints.
fn check_rule_fixture_as(name: &str, src: &str, rule: RuleId, kind: TargetKind) {
    let diags = lint_source(name, "genet-fixture", kind, src, &LintConfig::default());
    for d in &diags {
        assert_eq!(d.rule, rule, "unexpected rule in {name}: {d}");
    }
    let mut flagged: Vec<usize> = diags.iter().map(|d| d.line).collect();
    flagged.dedup();
    assert_eq!(
        flagged,
        positive_lines(src),
        "flagged lines mismatch in {name}: {diags:?}"
    );
}

fn check_rule_fixture(name: &str, src: &str, rule: RuleId) {
    check_rule_fixture_as(name, src, rule, TargetKind::Lib);
}

#[test]
fn unordered_iteration_fixture() {
    check_rule_fixture(
        "unordered_iteration.rs",
        UNORDERED,
        RuleId::UnorderedIteration,
    );
}

#[test]
fn wall_clock_fixture() {
    check_rule_fixture("wall_clock.rs", WALL_CLOCK, RuleId::WallClock);
}

#[test]
fn unseeded_rng_fixture() {
    // The unseeded-rng rule also fires inside `#[cfg(test)]` regions; the
    // fixture's last POSITIVE marker sits in one.
    check_rule_fixture("unseeded_rng.rs", UNSEEDED, RuleId::UnseededRng);
}

#[test]
fn truncating_cast_fixture() {
    check_rule_fixture("truncating_cast.rs", TRUNCATING, RuleId::TruncatingCast);
}

#[test]
fn panic_in_library_fixture() {
    check_rule_fixture("panic_in_library.rs", PANIC, RuleId::PanicInLibrary);
}

#[test]
fn par_shared_mutable_capture_fixture() {
    check_rule_fixture(
        "par_shared_mutable_capture.rs",
        PAR_CAPTURE,
        RuleId::ParSharedMutableCapture,
    );
}

#[test]
fn unordered_float_reduction_fixture() {
    check_rule_fixture(
        "unordered_float_reduction.rs",
        FLOAT_REDUCTION,
        RuleId::UnorderedFloatReduction,
    );
}

#[test]
fn thread_count_branching_fixture() {
    check_rule_fixture(
        "thread_count_branching.rs",
        THREAD_BRANCH,
        RuleId::ThreadCountBranching,
    );
}

#[test]
fn env_read_in_result_path_fixture() {
    check_rule_fixture(
        "env_read_in_result_path.rs",
        ENV_READ,
        RuleId::EnvReadInResultPath,
    );
}

#[test]
fn nonreproducible_sort_fixture() {
    // Linted as Bin so the `.unwrap()` inside the comparators exercises the
    // sort rule alone (panic-in-library is Lib-only); the last POSITIVE
    // marker proves the rule fires inside `#[cfg(test)]` regions too.
    check_rule_fixture_as(
        "nonreproducible_sort.rs",
        SORT,
        RuleId::NonreproducibleSort,
        TargetKind::Bin,
    );
}

#[test]
fn lexer_edge_cases_fixture() {
    // Raw strings, tricky char literals and nested block comments must all
    // lex cleanly; exactly the one marked wall-clock read survives.
    check_rule_fixture("lexer_edge_cases.rs", LEXER_EDGE, RuleId::WallClock);
}

#[test]
fn env_read_sanctioned_file_is_exempt() {
    // The same env fixture linted under the genet-telemetry paths.rs label:
    // every env read is sanctioned, which in turn makes the fixture's allow
    // annotation stale — and staleness is itself reported.
    let diags = lint_source(
        "crates/genet-telemetry/src/paths.rs",
        "genet-telemetry",
        TargetKind::Lib,
        ENV_READ,
        &LintConfig::default(),
    );
    let hits: Vec<(usize, RuleId)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(hits, vec![(21, RuleId::UnusedAllow)], "{diags:?}");
}

#[test]
fn panic_fixture_outside_library_targets() {
    // panic-in-library is a Lib-only rule: in a binary or test target none
    // of the unwraps fire — which in turn makes the fixture's in-file allow
    // annotation stale, and staleness is itself reported.
    for kind in [TargetKind::Bin, TargetKind::TestOrBench] {
        let diags = lint_source(
            "panic_in_library.rs",
            "genet-fixture",
            kind,
            PANIC,
            &LintConfig::default(),
        );
        let hits: Vec<(usize, RuleId)> = diags.iter().map(|d| (d.line, d.rule)).collect();
        assert_eq!(hits, vec![(22, RuleId::UnusedAllow)], "{kind:?}: {diags:?}");
    }
}

#[test]
fn crate_config_suppresses_whole_fixture() {
    let cfg = LintConfig::parse("[crate.genet-fixture]\nallow = [\"wall-clock-in-result-path\"]\n")
        .expect("config parses");
    // Every wall-clock hit is switched off crate-wide; the one remaining
    // diagnostic is the now-redundant in-file annotation.
    let diags = lint_source(
        "wall_clock.rs",
        "genet-fixture",
        TargetKind::Lib,
        WALL_CLOCK,
        &cfg,
    );
    let hits: Vec<(usize, RuleId)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(hits, vec![(29, RuleId::UnusedAllow)], "{diags:?}");
    // …and the config only applies to the named crate.
    let diags = lint_source(
        "wall_clock.rs",
        "genet-other",
        TargetKind::Lib,
        WALL_CLOCK,
        &cfg,
    );
    assert!(
        diags.iter().any(|d| d.rule == RuleId::WallClock),
        "{diags:?}"
    );
}

#[test]
fn annotation_edge_cases_fixture() {
    let diags = lint_source(
        "annotations.rs",
        "genet-fixture",
        TargetKind::Lib,
        ANNOTATIONS,
        &LintConfig::default(),
    );
    let hits: Vec<(usize, RuleId)> = diags.iter().map(|d| (d.line, d.rule)).collect();
    assert_eq!(
        hits,
        vec![
            (5, RuleId::UnusedAllow),           // stale: suppresses nothing
            (10, RuleId::MissingJustification), // bare allow without rationale
            (11, RuleId::PanicInLibrary),       // …so the unwrap still fires
            (15, RuleId::UnusedAllow),          // unknown rule name
            (16, RuleId::PanicInLibrary),       // …and suppresses nothing
        ],
        "{diags:?}"
    );
}

#[test]
fn manifest_hygiene_member_cases() {
    let ok = "[package]\nname = \"x\"\n\n[dependencies]\nrand = { workspace = true }\n\
              genet-math = { path = \"../genet-math\" }\n";
    let diags =
        genet_lint::manifest::check_member_manifest(&PathBuf::from("crates/x/Cargo.toml"), ok);
    assert!(diags.is_empty(), "{diags:?}");

    let bad = "[dependencies]\nserde = \"1.0\"\ntokio = { version = \"1\" }\n\
               good = { workspace = true }\n\n[dev-dependencies.quick]\ngit = \"https://e.com/q\"\n";
    let diags =
        genet_lint::manifest::check_member_manifest(&PathBuf::from("crates/x/Cargo.toml"), bad);
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 3, 7], "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::DependencyHygiene));
}

#[test]
fn manifest_hygiene_workspace_cases() {
    let ok = "[workspace.dependencies]\nrand = { path = \"third_party/rand\" }\n";
    let diags = genet_lint::manifest::check_workspace_manifest(&PathBuf::from("Cargo.toml"), ok);
    assert!(diags.is_empty(), "{diags:?}");

    let bad = "[workspace.dependencies]\nrand = \"0.9\"\nx = { git = \"https://e.com/x\" }\n\n\
               [patch.crates-io]\ny = { path = \"v\" }\n";
    let diags = genet_lint::manifest::check_workspace_manifest(&PathBuf::from("Cargo.toml"), bad);
    let lines: Vec<usize> = diags.iter().map(|d| d.line).collect();
    assert_eq!(lines, vec![2, 3, 5], "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == RuleId::DependencyHygiene));
}

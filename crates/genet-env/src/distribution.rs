//! The curriculum training-environment distribution.
//!
//! Genet's sequencing module promotes one new configuration per round:
//! `Q_cur ← (1 − w) · Q_cur + w · {p_new}` (Algorithm 2, line 13). After `t`
//! promotions the newest config carries probability `w`, the one before it
//! `w(1−w)`, and the original uniform distribution `(1−w)^t` — after the
//! default 9 rounds with `w = 0.3` about 4% on paper's configuration
//! (the paper quotes "about 10%" for its slightly different schedule; the
//! mass is configurable here).
//!
//! Sampling walks promoted configs from newest to oldest, keeping each with
//! probability `w`, and falls back to uniform sampling of the base space —
//! which realizes the recursive mixture exactly.

use crate::param::{EnvConfig, ParamSpace};
use rand::rngs::StdRng;
use rand::Rng;

/// A mixture distribution over environment configurations: a base uniform box
/// plus a stack of promoted configurations.
#[derive(Debug, Clone)]
pub struct CurriculumDist {
    base: ParamSpace,
    promoted: Vec<EnvConfig>,
    w: f64,
}

impl CurriculumDist {
    /// Starts as the uniform distribution over `base` (Genet's initial
    /// training distribution).
    ///
    /// # Panics
    /// Panics unless `0 < w < 1`.
    pub fn uniform(base: ParamSpace, w: f64) -> Self {
        assert!(w > 0.0 && w < 1.0, "mixture weight w={w} must lie in (0,1)");
        Self {
            base,
            promoted: Vec::new(),
            w,
        }
    }

    /// The base parameter space.
    pub fn base(&self) -> &ParamSpace {
        &self.base
    }

    /// Promoted configurations, oldest first.
    pub fn promoted(&self) -> &[EnvConfig] {
        &self.promoted
    }

    /// The per-round promotion weight `w`.
    pub fn w(&self) -> f64 {
        self.w
    }

    /// Promotes a new configuration (one Genet sequencing round).
    pub fn promote(&mut self, cfg: EnvConfig) {
        assert_eq!(
            cfg.values().len(),
            self.base.len(),
            "promoted config dimensionality must match the space"
        );
        self.promoted.push(cfg);
    }

    /// Probability mass still on the original uniform distribution,
    /// `(1 − w)^t` after `t` promotions.
    pub fn base_mass(&self) -> f64 {
        (1.0 - self.w).powi(self.promoted.len() as i32)
    }

    /// Probability mass of the `i`-th promoted config (oldest = 0):
    /// `w · (1 − w)^(t − 1 − i)`.
    pub fn promoted_mass(&self, i: usize) -> f64 {
        assert!(i < self.promoted.len());
        self.w * (1.0 - self.w).powi((self.promoted.len() - 1 - i) as i32)
    }

    /// Samples one training configuration.
    pub fn sample(&self, rng: &mut StdRng) -> EnvConfig {
        for cfg in self.promoted.iter().rev() {
            if rng.random::<f64>() < self.w {
                return cfg.clone();
            }
        }
        self.base.sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::ParamDim;
    use rand::SeedableRng;

    fn dist() -> CurriculumDist {
        let space = ParamSpace::new(vec![
            ParamDim::new("a", 0.0, 1.0),
            ParamDim::new("b", 10.0, 20.0),
        ]);
        CurriculumDist::uniform(space, 0.3)
    }

    #[test]
    fn masses_sum_to_one() {
        let mut d = dist();
        for k in 0..9 {
            let cfg = EnvConfig::from_values(vec![0.5, 15.0 + k as f64 * 0.1]);
            d.promote(cfg);
            let total: f64 = (0..d.promoted().len())
                .map(|i| d.promoted_mass(i))
                .sum::<f64>()
                + d.base_mass();
            assert!((total - 1.0).abs() < 1e-12, "round {k}: mass {total}");
        }
    }

    #[test]
    fn newest_config_has_weight_w() {
        let mut d = dist();
        d.promote(EnvConfig::from_values(vec![0.1, 11.0]));
        d.promote(EnvConfig::from_values(vec![0.9, 19.0]));
        assert!((d.promoted_mass(1) - 0.3).abs() < 1e-12);
        assert!((d.promoted_mass(0) - 0.3 * 0.7).abs() < 1e-12);
        assert!((d.base_mass() - 0.49).abs() < 1e-12);
    }

    #[test]
    fn empirical_sampling_matches_masses() {
        let mut d = dist();
        let special = EnvConfig::from_values(vec![0.123, 14.56]);
        d.promote(special.clone());
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let hits = (0..n).filter(|_| d.sample(&mut rng) == special).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.01, "observed {frac}, expected 0.3");
    }

    #[test]
    fn base_mass_after_nine_rounds() {
        let mut d = dist();
        for _ in 0..9 {
            d.promote(EnvConfig::from_values(vec![0.5, 15.0]));
        }
        // (1 - 0.3)^9 ≈ 0.040 — the original distribution is diluted but
        // never fully forgotten (§4.2 "Impact of forgetting").
        assert!((d.base_mass() - 0.7f64.powi(9)).abs() < 1e-12);
        assert!(d.base_mass() > 0.0);
    }

    #[test]
    fn uniform_dist_samples_from_base() {
        let d = dist();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let cfg = d.sample(&mut rng);
            assert!(d.base().contains(&cfg));
        }
    }

    #[test]
    #[should_panic(expected = "must lie in (0,1)")]
    fn rejects_degenerate_weight() {
        let space = ParamSpace::new(vec![ParamDim::new("a", 0.0, 1.0)]);
        let _ = CurriculumDist::uniform(space, 1.0);
    }
}

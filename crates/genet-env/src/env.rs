//! The step interface between simulators and policies.
//!
//! All three use cases expose the same episodic loop: observe a feature
//! vector, pick a discrete action, advance the simulator to the next decision
//! point, collect a scalar reward. The decision granularity differs (video
//! chunk for ABR, monitor interval for CC, request arrival for LB) but the
//! trait is identical, which is what lets `genet-core` implement
//! gap-to-baseline and curriculum training once for all scenarios.

use rand::rngs::StdRng;

/// Result of advancing an environment by one decision step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Reward earned for this step (already in the scenario's reward units,
    /// Table 1 of the paper).
    pub reward: f64,
    /// True when the episode ended with this step.
    pub done: bool,
}

/// One instantiated simulated environment, stepped to completion by a policy.
pub trait Env {
    /// Dimensionality of the observation vector.
    fn obs_dim(&self) -> usize;

    /// Number of discrete actions.
    fn action_count(&self) -> usize;

    /// Writes the current observation into `out` (length `obs_dim()`).
    fn observe(&self, out: &mut [f32]);

    /// Applies `action` and advances to the next decision point.
    ///
    /// Must not be called after an outcome with `done == true`.
    fn step(&mut self, action: usize) -> StepOutcome;
}

/// Anything that maps observations to discrete actions.
///
/// The RNG parameter lets stochastic policies (softmax sampling during
/// training) and deterministic ones (greedy evaluation, rule-based wrappers)
/// share one interface.
pub trait Policy {
    /// Chooses an action for the observation.
    fn act(&self, obs: &[f32], rng: &mut StdRng) -> usize;
}

impl<F> Policy for F
where
    F: Fn(&[f32], &mut StdRng) -> usize,
{
    fn act(&self, obs: &[f32], rng: &mut StdRng) -> usize {
        self(obs, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Minimal counting environment used to validate the trait contract.
    struct CountEnv {
        t: usize,
        horizon: usize,
    }

    impl Env for CountEnv {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_count(&self) -> usize {
            2
        }
        fn observe(&self, out: &mut [f32]) {
            out[0] = self.t as f32;
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            assert!(action < 2);
            self.t += 1;
            StepOutcome {
                reward: action as f64,
                done: self.t >= self.horizon,
            }
        }
    }

    #[test]
    fn closure_policy_drives_env() {
        let mut env = CountEnv { t: 0, horizon: 5 };
        let policy = |_obs: &[f32], _rng: &mut StdRng| 1usize;
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0.0;
        let mut obs = vec![0.0f32; env.obs_dim()];
        loop {
            env.observe(&mut obs);
            let a = policy.act(&obs, &mut rng);
            let out = env.step(a);
            total += out.reward;
            if out.done {
                break;
            }
        }
        assert_eq!(total, 5.0);
    }
}

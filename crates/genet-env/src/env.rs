//! The step interface between simulators and policies.
//!
//! All three use cases expose the same episodic loop: observe a feature
//! vector, pick a discrete action, advance the simulator to the next decision
//! point, collect a scalar reward. The decision granularity differs (video
//! chunk for ABR, monitor interval for CC, request arrival for LB) but the
//! trait is identical, which is what lets `genet-core` implement
//! gap-to-baseline and curriculum training once for all scenarios.

use rand::rngs::StdRng;
use std::any::Any;

/// Result of advancing an environment by one decision step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Reward earned for this step (already in the scenario's reward units,
    /// Table 1 of the paper).
    pub reward: f64,
    /// True when the episode ended with this step.
    pub done: bool,
}

/// One instantiated simulated environment, stepped to completion by a policy.
pub trait Env {
    /// Dimensionality of the observation vector.
    fn obs_dim(&self) -> usize;

    /// Number of discrete actions.
    fn action_count(&self) -> usize;

    /// Writes the current observation into `out` (length `obs_dim()`).
    fn observe(&self, out: &mut [f32]);

    /// Applies `action` and advances to the next decision point.
    ///
    /// Must not be called after an outcome with `done == true`.
    fn step(&mut self, action: usize) -> StepOutcome;

    /// Scenario-specific diagnostic observables of the current episode
    /// state, as `(name, value)` pairs — e.g. a multi-flow CC environment
    /// reports its Jain fairness index and aggregate throughput. Purely
    /// observational (never consulted by training); defaults to none.
    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        Vec::new()
    }
}

/// Opaque per-rollout scratch storage for [`Policy::act_with`].
///
/// Episode/evaluation loops create one of these per rollout and thread it
/// through every step, so a policy can keep its forward-pass buffers alive
/// across steps instead of allocating per call. The storage is type-erased
/// (`Box<dyn Any>`): `genet-env` needs no knowledge of any concrete
/// policy's scratch layout, and policies that need none ignore it.
#[derive(Debug, Default)]
pub struct PolicyScratch(Option<Box<dyn Any + Send>>);

impl PolicyScratch {
    /// An empty scratch slot.
    pub fn new() -> Self {
        Self::default()
    }

    /// The cached value of type `T`, initializing it with `init` on first
    /// use — or re-initializing if a different type (or a value `reuse`
    /// rejects, e.g. a buffer sized for another network) is cached.
    pub fn get_or_insert_with<T, F, R>(&mut self, reuse: R, init: F) -> &mut T
    where
        T: Any + Send,
        F: FnOnce() -> T,
        R: FnOnce(&T) -> bool,
    {
        let fits = self
            .0
            .as_ref()
            .and_then(|b| b.downcast_ref::<T>())
            .is_some_and(|v| reuse(v));
        if !fits {
            self.0 = Some(Box::new(init()));
        }
        let slot = self.0.as_mut().and_then(|b| b.downcast_mut::<T>());
        // genet-lint: allow(panic-in-library) the slot was just filled with a T above if it did not already hold one
        slot.expect("PolicyScratch slot holds the just-inserted type")
    }
}

/// Anything that maps observations to discrete actions.
///
/// The RNG parameter lets stochastic policies (softmax sampling during
/// training) and deterministic ones (greedy evaluation, rule-based wrappers)
/// share one interface.
pub trait Policy {
    /// Chooses an action for the observation.
    fn act(&self, obs: &[f32], rng: &mut StdRng) -> usize;

    /// [`Policy::act`] with caller-held scratch storage. Rollout loops call
    /// this once per step with a rollout-local [`PolicyScratch`]; policies
    /// with per-call buffers (e.g. MLP activations) cache them there. Must
    /// return exactly what `act` would — the scratch is a pure allocation
    /// optimization and never carries state between decisions.
    fn act_with(&self, obs: &[f32], rng: &mut StdRng, _scratch: &mut PolicyScratch) -> usize {
        self.act(obs, rng)
    }
}

impl<F> Policy for F
where
    F: Fn(&[f32], &mut StdRng) -> usize,
{
    fn act(&self, obs: &[f32], rng: &mut StdRng) -> usize {
        self(obs, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Minimal counting environment used to validate the trait contract.
    struct CountEnv {
        t: usize,
        horizon: usize,
    }

    impl Env for CountEnv {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_count(&self) -> usize {
            2
        }
        fn observe(&self, out: &mut [f32]) {
            out[0] = self.t as f32;
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            assert!(action < 2);
            self.t += 1;
            StepOutcome {
                reward: action as f64,
                done: self.t >= self.horizon,
            }
        }
    }

    #[test]
    fn closure_policy_drives_env() {
        let mut env = CountEnv { t: 0, horizon: 5 };
        let policy = |_obs: &[f32], _rng: &mut StdRng| 1usize;
        let mut rng = StdRng::seed_from_u64(0);
        let mut total = 0.0;
        let mut obs = vec![0.0f32; env.obs_dim()];
        loop {
            env.observe(&mut obs);
            let a = policy.act(&obs, &mut rng);
            let out = env.step(a);
            total += out.reward;
            if out.done {
                break;
            }
        }
        assert_eq!(total, 5.0);
    }

    #[test]
    fn act_with_default_matches_act() {
        let policy = |obs: &[f32], _rng: &mut StdRng| obs[0] as usize;
        let mut rng = StdRng::seed_from_u64(0);
        let mut scratch = PolicyScratch::new();
        assert_eq!(
            policy.act(&[1.0], &mut rng),
            policy.act_with(&[1.0], &mut rng, &mut scratch)
        );
    }

    #[test]
    fn policy_scratch_caches_and_reinitializes() {
        let mut scratch = PolicyScratch::new();
        let v = scratch.get_or_insert_with(|_: &Vec<u8>| true, || vec![1u8, 2]);
        v.push(3);
        // Accepted by `reuse` → same value survives.
        let v = scratch.get_or_insert_with(|_: &Vec<u8>| true, || vec![9u8]);
        assert_eq!(v, &vec![1u8, 2, 3]);
        // Rejected by `reuse` → re-initialized.
        let v = scratch.get_or_insert_with(|_: &Vec<u8>| false, || vec![9u8]);
        assert_eq!(v, &vec![9u8]);
        // Different type → re-initialized.
        let s = scratch.get_or_insert_with(|_: &String| true, || "x".to_string());
        assert_eq!(s, "x");
    }
}

//! # genet-env
//!
//! Environment abstractions shared by every Genet use case.
//!
//! The paper (§4.2) parameterizes each use case's *space of network
//! environments* as a box of 5–6 scalar parameters (Tables 3, 4, 5). A
//! **configuration** is a point in that box; instantiating a configuration
//! with a random seed produces one concrete simulated **environment** (a
//! bandwidth trace plus queue/buffer/latency settings, or an LB workload).
//!
//! This crate defines:
//!
//! * [`ParamSpace`] / [`ParamDim`] — named boxes of parameters with the
//!   RL1/RL2/RL3 sub-range construction used throughout the evaluation,
//! * [`EnvConfig`] — a sampled configuration vector,
//! * [`CurriculumDist`] — the training-environment distribution that Genet
//!   updates each sequencing round (`Q ← (1−w)·Q + w·{p_new}`),
//! * [`Env`] — the step interface RL policies interact with (chunk-level for
//!   ABR, monitor-interval for CC, per-request for LB),
//! * [`Scenario`] — one use case: builds envs from configs, runs its
//!   rule-based baselines and oracle on the *same* env instance so
//!   gap-to-baseline comparisons are paired,
//! * [`Policy`] — anything that maps observations to actions (the trained
//!   RL policy or a wrapped rule-based scheme).

#![forbid(unsafe_code)]

pub mod distribution;
pub mod env;
pub mod param;
pub mod scenario;

pub use distribution::CurriculumDist;
pub use env::{Env, Policy, PolicyScratch, StepOutcome};
pub use param::{EnvConfig, ParamDim, ParamSpace, RangeLevel};
pub use scenario::{rollout_policy, rollout_rewards, Scenario, MAX_EPISODE_STEPS};

//! The `Scenario` trait — one RL use case (ABR, CC or LB).
//!
//! A scenario owns everything Genet's training framework needs to remain
//! generic (§4.3, Figure 8 of the paper): the environment parameter space,
//! an environment factory, and paired evaluation of rule-based baselines and
//! the offline oracle on the *same* environment instance (same config, same
//! seed ⇒ same trace), which is what makes `Gap(p)` a paired comparison.

use crate::env::{Env, Policy};
use crate::param::{EnvConfig, ParamSpace, RangeLevel};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Hard cap on episode length; simulators are expected to terminate long
/// before this, so hitting the cap indicates a stuck environment.
pub const MAX_EPISODE_STEPS: usize = 100_000;

/// One network adaptation use case.
pub trait Scenario: Sync {
    /// Short identifier (`"abr"`, `"cc"`, `"lb"`).
    fn name(&self) -> &'static str;

    /// The full (RL3) environment parameter space — Tables 3/4/5.
    fn full_space(&self) -> ParamSpace;

    /// The parameter space at a training-range level.
    fn space(&self, level: RangeLevel) -> ParamSpace {
        self.full_space().at_level(level)
    }

    /// Observation dimensionality for the RL policy.
    fn obs_dim(&self) -> usize;

    /// Discrete action count for the RL policy.
    fn action_count(&self) -> usize;

    /// Instantiates one simulated environment from a configuration and a
    /// seed. Equal `(cfg, seed)` must produce identical environments.
    fn make_env(&self, cfg: &EnvConfig, seed: u64) -> Box<dyn Env>;

    /// Names of the rule-based baselines this scenario implements.
    fn baseline_names(&self) -> &'static [&'static str];

    /// The baseline Genet trains against by default (MPC for ABR, BBR for
    /// CC, LLF for LB — §5.1).
    fn default_baseline(&self) -> &'static str;

    /// Mean per-step reward of the named rule-based baseline on the
    /// environment `(cfg, seed)`.
    ///
    /// # Panics
    /// Panics on an unknown baseline name.
    fn eval_baseline(&self, name: &str, cfg: &EnvConfig, seed: u64) -> f64;

    /// Mean per-step reward of the offline oracle (ground-truth-knowledge
    /// optimum approximation) on `(cfg, seed)` — used by the Strawman-3 /
    /// CL3 comparators and the Robustify variant.
    fn eval_oracle(&self, cfg: &EnvConfig, seed: u64) -> f64;

    /// Reward units per "one-ish" training reward: rollout rewards are
    /// divided by this during PPO training so critic targets stay O(1)
    /// regardless of the scenario's natural reward scale (CC rewards live
    /// in the hundreds, ABR in single digits). Evaluation always uses
    /// natural units.
    fn reward_scale(&self) -> f64 {
        1.0
    }

    /// Mean non-smoothness of the bandwidth dynamics an environment
    /// `(cfg, seed)` exhibits — used by the Robustify-style selection
    /// criteria (paper Fig. 19), which penalize adversarially jagged
    /// traces. Scenarios without a bandwidth trace return 0.
    fn env_non_smoothness(&self, _cfg: &EnvConfig, _seed: u64) -> f64 {
        0.0
    }

    /// Mean per-step reward of an RL-style [`Policy`] on `(cfg, seed)`.
    fn eval_policy(&self, policy: &dyn Policy, cfg: &EnvConfig, seed: u64) -> f64 {
        let mut env = self.make_env(cfg, seed);
        // Derive the policy's exploration stream from the env seed so paired
        // comparisons stay deterministic.
        let mut rng = StdRng::seed_from_u64(genet_math::derive_seed(seed, 0xBEEF));
        rollout_policy(env.as_mut(), policy, &mut rng)
    }
}

/// Runs `policy` on `env` to termination; returns the mean per-step reward
/// (the paper's rewards are per-decision averages, Table 1). Drives the
/// policy through [`Policy::act_with`] with a rollout-local scratch, so MLP
/// policies reuse their forward-pass buffers across every step.
pub fn rollout_policy(env: &mut dyn Env, policy: &dyn Policy, rng: &mut StdRng) -> f64 {
    let mut obs = vec![0.0f32; env.obs_dim()];
    let mut scratch = crate::env::PolicyScratch::new();
    let mut total = 0.0;
    let mut steps = 0usize;
    loop {
        env.observe(&mut obs);
        let action = policy.act_with(&obs, rng, &mut scratch);
        debug_assert!(
            action < env.action_count(),
            "policy produced out-of-range action"
        );
        let out = env.step(action);
        total += out.reward;
        steps += 1;
        if out.done {
            break;
        }
        assert!(steps < MAX_EPISODE_STEPS, "environment did not terminate");
    }
    total / steps as f64
}

/// Runs `policy` on `env` and returns the full per-step reward sequence —
/// used by experiments that need reward breakdowns rather than the mean.
pub fn rollout_rewards(env: &mut dyn Env, policy: &dyn Policy, rng: &mut StdRng) -> Vec<f64> {
    let mut obs = vec![0.0f32; env.obs_dim()];
    let mut scratch = crate::env::PolicyScratch::new();
    let mut rewards = Vec::new();
    loop {
        env.observe(&mut obs);
        let action = policy.act_with(&obs, rng, &mut scratch);
        let out = env.step(action);
        rewards.push(out.reward);
        if out.done {
            break;
        }
        assert!(
            rewards.len() < MAX_EPISODE_STEPS,
            "environment did not terminate"
        );
    }
    rewards
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::StepOutcome;
    use crate::param::ParamDim;

    /// Toy scenario: reward 1.0 when the action matches the env's hidden
    /// target parity, else 0.0. Lets us test the trait plumbing end-to-end
    /// without a real simulator.
    struct ParityScenario;

    struct ParityEnv {
        target: usize,
        t: usize,
    }

    impl Env for ParityEnv {
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_count(&self) -> usize {
            2
        }
        fn observe(&self, out: &mut [f32]) {
            out[0] = self.target as f32;
        }
        fn step(&mut self, action: usize) -> StepOutcome {
            self.t += 1;
            StepOutcome {
                reward: if action == self.target { 1.0 } else { 0.0 },
                done: self.t >= 10,
            }
        }
    }

    impl Scenario for ParityScenario {
        fn name(&self) -> &'static str {
            "parity"
        }
        fn full_space(&self) -> ParamSpace {
            ParamSpace::new(vec![ParamDim::int("target", 0.0, 1.0)])
        }
        fn obs_dim(&self) -> usize {
            1
        }
        fn action_count(&self) -> usize {
            2
        }
        fn make_env(&self, cfg: &EnvConfig, _seed: u64) -> Box<dyn Env> {
            Box::new(ParityEnv {
                target: cfg.get(0) as usize,
                t: 0,
            })
        }
        fn baseline_names(&self) -> &'static [&'static str] {
            &["oracle-ish"]
        }
        fn default_baseline(&self) -> &'static str {
            "oracle-ish"
        }
        fn eval_baseline(&self, name: &str, cfg: &EnvConfig, seed: u64) -> f64 {
            assert_eq!(name, "oracle-ish");
            self.eval_policy(&|obs: &[f32], _rng: &mut StdRng| obs[0] as usize, cfg, seed)
        }
        fn eval_oracle(&self, cfg: &EnvConfig, seed: u64) -> f64 {
            self.eval_baseline("oracle-ish", cfg, seed)
        }
    }

    #[test]
    fn perfect_policy_scores_one_per_step() {
        let s = ParityScenario;
        let cfg = EnvConfig::from_values(vec![1.0]);
        let r = s.eval_baseline("oracle-ish", &cfg, 7);
        assert_eq!(r, 1.0);
    }

    #[test]
    fn wrong_policy_scores_zero() {
        let s = ParityScenario;
        let cfg = EnvConfig::from_values(vec![1.0]);
        let r = s.eval_policy(&|_: &[f32], _: &mut StdRng| 0usize, &cfg, 7);
        assert_eq!(r, 0.0);
    }

    #[test]
    fn eval_policy_is_deterministic_for_same_seed() {
        let s = ParityScenario;
        let cfg = EnvConfig::from_values(vec![0.0]);
        let p = |_: &[f32], rng: &mut StdRng| {
            use rand::Rng;
            rng.random_range(0..2)
        };
        assert_eq!(s.eval_policy(&p, &cfg, 42), s.eval_policy(&p, &cfg, 42));
    }

    #[test]
    fn rollout_rewards_length_matches_horizon() {
        let s = ParityScenario;
        let cfg = EnvConfig::from_values(vec![1.0]);
        let mut env = s.make_env(&cfg, 0);
        let mut rng = StdRng::seed_from_u64(0);
        let rs = rollout_rewards(env.as_mut(), &|_: &[f32], _: &mut StdRng| 1usize, &mut rng);
        assert_eq!(rs.len(), 10);
        assert!(rs.iter().all(|&r| r == 1.0));
    }
}

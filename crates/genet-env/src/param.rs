//! Parameter spaces and environment configurations.
//!
//! A [`ParamSpace`] is the box `[min_1, max_1] × … × [min_d, max_d]` of
//! environment parameters from Tables 3/4/5 of the paper. A point in the box
//! is an [`EnvConfig`]. The evaluation trains "traditional RL" policies on
//! three nested sub-ranges of the full space (RL1 ⊂ RL2 ⊂ RL3); following the
//! construction spelled out in Table 4 ("the range of RL1 is defined as 1/9
//! of the range of RL3 and the range of RL2 is defined as 1/3 of RL3"), the
//! sub-ranges shrink the full box around its midpoint by a width fraction.

use rand::Rng;

/// Which training-range variant of a scenario's parameter space to use.
///
/// `Rl3` is always the full range from Tables 3/4/5; `Rl1`/`Rl2` shrink every
/// dimension's width to 1/9 and 1/3 of full, centered in the full range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RangeLevel {
    /// Narrow range (1/9 of full width).
    Rl1,
    /// Medium range (1/3 of full width).
    Rl2,
    /// Full range from Tables 3/4/5.
    Rl3,
}

impl RangeLevel {
    /// The width fraction this level keeps of the full range.
    pub fn width_fraction(self) -> f64 {
        match self {
            RangeLevel::Rl1 => 1.0 / 9.0,
            RangeLevel::Rl2 => 1.0 / 3.0,
            RangeLevel::Rl3 => 1.0,
        }
    }

    /// Display label matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            RangeLevel::Rl1 => "RL1",
            RangeLevel::Rl2 => "RL2",
            RangeLevel::Rl3 => "RL3",
        }
    }

    /// All three levels in ascending range order.
    pub fn all() -> [RangeLevel; 3] {
        [RangeLevel::Rl1, RangeLevel::Rl2, RangeLevel::Rl3]
    }
}

/// One named environment parameter with its admissible range.
///
/// Dimensions that span orders of magnitude (link bandwidth from 0.1 to
/// 100 Mbps, queue sizes from 2 to 200 packets) are sampled log-uniformly —
/// Table 4's default bandwidth of 3.16 Mbps is exactly the geometric mean of
/// its [0.1, 100] range, and §4.2 describes the initial training
/// distribution as "uniform or exponential along each parameter".
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDim {
    /// Human-readable name, e.g. `"max_bw_mbps"`.
    pub name: &'static str,
    /// Lower bound (inclusive).
    pub min: f64,
    /// Upper bound (inclusive).
    pub max: f64,
    /// Round sampled values to integers (e.g. queue sizes in packets).
    pub integer: bool,
    /// Sample log-uniformly (requires `min > 0`).
    pub log: bool,
}

impl ParamDim {
    /// A continuous dimension, sampled uniformly.
    pub fn new(name: &'static str, min: f64, max: f64) -> Self {
        assert!(min <= max, "dim {name}: min {min} > max {max}");
        Self {
            name,
            min,
            max,
            integer: false,
            log: false,
        }
    }

    /// An integer-valued dimension.
    pub fn int(name: &'static str, min: f64, max: f64) -> Self {
        assert!(min <= max, "dim {name}: min {min} > max {max}");
        Self {
            name,
            min,
            max,
            integer: true,
            log: false,
        }
    }

    /// A log-uniformly sampled dimension.
    ///
    /// # Panics
    /// Panics unless `0 < min <= max`.
    pub fn log_scale(name: &'static str, min: f64, max: f64) -> Self {
        assert!(
            min > 0.0 && min <= max,
            "dim {name}: log range needs 0 < {min} <= {max}"
        );
        Self {
            name,
            min,
            max,
            integer: false,
            log: true,
        }
    }

    /// An integer-valued, log-uniformly sampled dimension.
    pub fn log_int(name: &'static str, min: f64, max: f64) -> Self {
        assert!(
            min > 0.0 && min <= max,
            "dim {name}: log range needs 0 < {min} <= {max}"
        );
        Self {
            name,
            min,
            max,
            integer: true,
            log: true,
        }
    }

    /// Range width.
    pub fn width(&self) -> f64 {
        self.max - self.min
    }

    /// Maps `u ∈ [0, 1]` into the range (linear or log, per the dim).
    pub fn lerp(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let v = if self.log {
            (self.min.ln() + u * (self.max.ln() - self.min.ln())).exp()
        } else {
            self.min + u * self.width()
        };
        self.quantize(v)
    }

    /// Inverse of [`ParamDim::lerp`] (value → unit coordinate).
    pub fn unlerp(&self, v: f64) -> f64 {
        if self.max <= self.min {
            return 0.5;
        }
        let u = if self.log {
            (v.max(self.min).ln() - self.min.ln()) / (self.max.ln() - self.min.ln())
        } else {
            (v - self.min) / self.width()
        };
        u.clamp(0.0, 1.0)
    }

    /// Midpoint of the range in sampling space (geometric mean for log dims).
    pub fn midpoint(&self) -> f64 {
        if self.log {
            (self.min * self.max).sqrt()
        } else {
            0.5 * (self.min + self.max)
        }
    }

    fn quantize(&self, v: f64) -> f64 {
        let v = v.clamp(self.min, self.max);
        if self.integer {
            v.round().clamp(self.min.ceil(), self.max.floor())
        } else {
            v
        }
    }
}

/// A box of environment parameters — the searchable environment space.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpace {
    dims: Vec<ParamDim>,
}

impl ParamSpace {
    /// Builds a space from its dimensions.
    ///
    /// # Panics
    /// Panics on duplicate dimension names (they would make lookups
    /// ambiguous).
    pub fn new(dims: Vec<ParamDim>) -> Self {
        for i in 0..dims.len() {
            for j in (i + 1)..dims.len() {
                assert_ne!(
                    dims[i].name, dims[j].name,
                    "duplicate dim name {}",
                    dims[i].name
                );
            }
        }
        Self { dims }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The dimensions in order.
    pub fn dims(&self) -> &[ParamDim] {
        &self.dims
    }

    /// Index of a dimension by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.dims.iter().position(|d| d.name == name)
    }

    /// Samples a configuration from the box (uniform per dimension, in log
    /// space for log-scaled dims).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> EnvConfig {
        let values = self
            .dims
            .iter()
            .map(|d| {
                if d.width() == 0.0 {
                    d.min
                } else {
                    d.lerp(rng.random())
                }
            })
            .collect();
        EnvConfig { values }
    }

    /// The configuration at the centre of the box (used to initialize the
    /// paper's grid-search comparator, Fig. 20, and as the "default"
    /// parameter column of Tables 3/4/5 when a sweep varies one dimension).
    pub fn midpoint(&self) -> EnvConfig {
        EnvConfig {
            values: self.dims.iter().map(|d| d.quantize(d.midpoint())).collect(),
        }
    }

    /// Clamps (and integer-quantizes) a raw vector into the box.
    pub fn clamp(&self, values: &[f64]) -> EnvConfig {
        assert_eq!(
            values.len(),
            self.dims.len(),
            "config dimensionality mismatch"
        );
        EnvConfig {
            values: self
                .dims
                .iter()
                .zip(values)
                .map(|(d, &v)| d.quantize(v))
                .collect(),
        }
    }

    /// Shrinks every dimension to `fraction` of its width, centred at the
    /// midpoint — the RL1/RL2 construction. Log dims shrink in log space
    /// (around the geometric mean).
    pub fn shrunk(&self, fraction: f64) -> ParamSpace {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction {fraction} out of [0,1]"
        );
        let dims = self
            .dims
            .iter()
            .map(|d| {
                let mut sub = d.clone();
                // Quantization at the bounds is unwanted here; lerp without
                // the integer snap by computing in transformed space.
                let (lo_u, hi_u) = (0.5 - fraction / 2.0, 0.5 + fraction / 2.0);
                let raw = |u: f64| {
                    if d.log {
                        (d.min.ln() + u * (d.max.ln() - d.min.ln())).exp()
                    } else {
                        d.min + u * d.width()
                    }
                };
                sub.min = raw(lo_u);
                sub.max = raw(hi_u);
                sub
            })
            .collect();
        ParamSpace { dims }
    }

    /// The sub-space for a training-range level.
    pub fn at_level(&self, level: RangeLevel) -> ParamSpace {
        match level {
            RangeLevel::Rl3 => self.clone(),
            other => self.shrunk(other.width_fraction()),
        }
    }

    /// True when `cfg` lies inside the box (after integer quantization
    /// tolerance).
    pub fn contains(&self, cfg: &EnvConfig) -> bool {
        cfg.values.len() == self.dims.len()
            && self
                .dims
                .iter()
                .zip(&cfg.values)
                .all(|(d, &v)| v >= d.min - 1e-9 && v <= d.max + 1e-9)
    }

    /// Normalizes a config to unit-cube coordinates (for GP kernels, which
    /// need comparable length scales across heterogeneous units; log dims
    /// map through log space).
    pub fn normalize(&self, cfg: &EnvConfig) -> Vec<f64> {
        assert_eq!(cfg.values.len(), self.dims.len());
        self.dims
            .iter()
            .zip(&cfg.values)
            .map(|(d, &v)| if d.width() == 0.0 { 0.5 } else { d.unlerp(v) })
            .collect()
    }

    /// Maps unit-cube coordinates back into the box.
    pub fn denormalize(&self, unit: &[f64]) -> EnvConfig {
        assert_eq!(unit.len(), self.dims.len());
        EnvConfig {
            values: self
                .dims
                .iter()
                .zip(unit)
                .map(|(d, &u)| d.lerp(u))
                .collect(),
        }
    }
}

/// One sampled environment configuration — a point in a [`ParamSpace`].
///
/// Values are stored in the same order as the space's dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct EnvConfig {
    values: Vec<f64>,
}

impl EnvConfig {
    /// Builds a config directly from raw values (callers that construct
    /// configs by hand should prefer [`ParamSpace::clamp`]).
    pub fn from_values(values: Vec<f64>) -> Self {
        Self { values }
    }

    /// The raw parameter vector.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value of the dimension at `idx`.
    pub fn get(&self, idx: usize) -> f64 {
        self.values[idx]
    }

    /// Value of a dimension by name, resolved against `space`.
    ///
    /// # Panics
    /// Panics if the name is unknown — a misspelled parameter name is a
    /// programming error we want loudly at test time.
    pub fn get_named(&self, space: &ParamSpace, name: &str) -> f64 {
        let idx = space
            .index_of(name)
            // genet-lint: allow(panic-in-library) documented "# Panics" contract: parameter names are compile-time constants
            .unwrap_or_else(|| panic!("unknown parameter name: {name}"));
        self.values[idx]
    }

    /// Returns a copy with dimension `idx` replaced by `v`.
    pub fn with_value(&self, idx: usize, v: f64) -> EnvConfig {
        let mut values = self.values.clone();
        values[idx] = v;
        EnvConfig { values }
    }
}

impl std::fmt::Display for EnvConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> ParamSpace {
        ParamSpace::new(vec![
            ParamDim::new("bw", 2.0, 100.0),
            ParamDim::new("rtt_ms", 20.0, 1000.0),
            ParamDim::int("queue", 2.0, 200.0),
        ])
    }

    #[test]
    fn sample_stays_in_box_and_quantizes_ints() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let cfg = s.sample(&mut rng);
            assert!(s.contains(&cfg), "{cfg}");
            let q = cfg.get_named(&s, "queue");
            assert_eq!(q, q.round(), "integer dim must be quantized");
        }
    }

    #[test]
    fn shrunk_preserves_midpoint_and_scales_width() {
        let s = space();
        let narrow = s.shrunk(1.0 / 9.0);
        for (full, sub) in s.dims().iter().zip(narrow.dims()) {
            assert!((sub.midpoint() - full.midpoint()).abs() < 1e-9);
            assert!((sub.width() - full.width() / 9.0).abs() < 1e-9);
        }
    }

    #[test]
    fn levels_are_nested() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(2);
        let rl1 = s.at_level(RangeLevel::Rl1);
        let rl2 = s.at_level(RangeLevel::Rl2);
        for _ in 0..200 {
            let c1 = rl1.sample(&mut rng);
            assert!(rl2.contains(&c1), "RL1 sample must lie inside RL2");
            assert!(s.contains(&c1), "RL1 sample must lie inside RL3");
        }
    }

    #[test]
    fn normalize_denormalize_roundtrip() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let cfg = s.sample(&mut rng);
            let unit = s.normalize(&cfg);
            assert!(unit.iter().all(|&u| (0.0..=1.0).contains(&u)));
            let back = s.denormalize(&unit);
            for (a, b) in cfg.values().iter().zip(back.values()) {
                assert!((a - b).abs() < 1e-6, "{cfg} vs {back}");
            }
        }
    }

    #[test]
    fn midpoint_is_centre() {
        let s = space();
        let m = s.midpoint();
        assert!((m.get_named(&s, "bw") - 51.0).abs() < 1e-9);
        assert_eq!(m.get_named(&s, "queue"), 101.0);
    }

    #[test]
    fn clamp_pulls_into_box() {
        let s = space();
        let cfg = s.clamp(&[-5.0, 2000.0, 7.4]);
        assert_eq!(cfg.get_named(&s, "bw"), 2.0);
        assert_eq!(cfg.get_named(&s, "rtt_ms"), 1000.0);
        assert_eq!(cfg.get_named(&s, "queue"), 7.0);
    }

    #[test]
    #[should_panic(expected = "unknown parameter name")]
    fn unknown_name_panics() {
        let s = space();
        let cfg = s.midpoint();
        let _ = cfg.get_named(&s, "nonexistent");
    }

    #[test]
    #[should_panic(expected = "duplicate dim name")]
    fn duplicate_names_rejected() {
        let _ = ParamSpace::new(vec![
            ParamDim::new("a", 0.0, 1.0),
            ParamDim::new("a", 0.0, 2.0),
        ]);
    }

    #[test]
    fn log_dim_samples_geometrically() {
        let s = ParamSpace::new(vec![ParamDim::log_scale("bw", 0.1, 100.0)]);
        // Geometric-mean midpoint — matches Table 4's default of 3.16 Mbps.
        assert!((s.midpoint().get(0) - 3.1623).abs() < 1e-3);
        let mut rng = StdRng::seed_from_u64(5);
        let mut below_gm = 0usize;
        let n = 10_000;
        for _ in 0..n {
            let v = s.sample(&mut rng).get(0);
            assert!((0.1..=100.0).contains(&v));
            if v < 3.1623 {
                below_gm += 1;
            }
        }
        // Log-uniform: half the mass below the geometric mean.
        let frac = below_gm as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "{frac}");
    }

    #[test]
    fn log_dim_normalize_roundtrip() {
        let s = ParamSpace::new(vec![ParamDim::log_scale("bw", 0.5, 50.0)]);
        let cfg = EnvConfig::from_values(vec![5.0]);
        let u = s.normalize(&cfg);
        assert!(
            (u[0] - 0.5).abs() < 1e-9,
            "5 is the geometric mean of [0.5, 50]"
        );
        let back = s.denormalize(&u);
        assert!((back.get(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn log_dim_shrunk_keeps_geometric_centre() {
        let s = ParamSpace::new(vec![ParamDim::log_scale("bw", 1.0, 100.0)]);
        let sub = s.shrunk(1.0 / 3.0);
        let d = &sub.dims()[0];
        assert!(d.log);
        assert!(((d.min * d.max).sqrt() - 10.0).abs() < 1e-6, "{d:?}");
        assert!(d.min > 1.0 && d.max < 100.0);
    }

    #[test]
    #[should_panic(expected = "log range needs")]
    fn log_dim_rejects_nonpositive_min() {
        let _ = ParamDim::log_scale("bad", 0.0, 1.0);
    }

    #[test]
    fn width_fraction_values() {
        assert!((RangeLevel::Rl1.width_fraction() - 1.0 / 9.0).abs() < 1e-12);
        assert!((RangeLevel::Rl2.width_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(RangeLevel::Rl3.width_fraction(), 1.0);
    }
}
